// Tests for the model extensions: honest-message delays ("receive up to n
// messages"), non-finite input hardening, and the IDX dataset loader.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>

#include "aggregation/registry.hpp"
#include "agreement/protocol.hpp"
#include "linalg/hyperbox.hpp"
#include "ml/idx_loader.hpp"
#include "network/adversary.hpp"
#include "network/sync_network.hpp"
#include "util/rng.hpp"

namespace bcl {
namespace {

// --- honest-message delays ---

class CountingProcess final : public HonestProcess {
 public:
  explicit CountingProcess(std::size_t id) : id_(id) {}
  Vector outgoing(std::size_t) const override {
    return {static_cast<double>(id_)};
  }
  void receive(std::size_t, std::vector<Message>&& inbox) override {
    last_inbox_size_ = inbox.size();
  }
  std::size_t last_inbox_size() const { return last_inbox_size_; }

 private:
  std::size_t id_;
  std::size_t last_inbox_size_ = 0;
};

TEST(Delays, NeverBelowFloor) {
  const std::size_t n = 6;
  const std::size_t t = 1;
  std::vector<std::unique_ptr<CountingProcess>> procs;
  std::vector<HonestProcess*> pointers;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<CountingProcess>(i));
    pointers.push_back(procs.back().get());
  }
  NoAdversary inner;
  // Request to delay EVERY honest message; the floor must clamp.
  DelayingAdversary adversary(inner, 1.0, 7);
  SyncNetwork net(pointers, adversary, nullptr, n - t);
  net.run(4);
  for (const auto& p : procs) {
    EXPECT_EQ(p->last_inbox_size(), n - t);
  }
  EXPECT_GT(net.stats().messages_delayed, 0u);
}

TEST(Delays, DefaultNetworkIgnoresDelayRequests) {
  const std::size_t n = 4;
  std::vector<std::unique_ptr<CountingProcess>> procs;
  std::vector<HonestProcess*> pointers;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<CountingProcess>(i));
    pointers.push_back(procs.back().get());
  }
  NoAdversary inner;
  DelayingAdversary adversary(inner, 1.0, 7);
  SyncNetwork net(pointers, adversary);  // no min_inbox: full synchrony
  net.run_round();
  for (const auto& p : procs) {
    EXPECT_EQ(p->last_inbox_size(), n);
  }
  EXPECT_EQ(net.stats().messages_delayed, 0u);
}

TEST(Delays, ZeroProbabilityDelaysNothing) {
  NoAdversary inner;
  DelayingAdversary adversary(inner, 0.0, 3);
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t r = 0; r < 5; ++r) {
      EXPECT_FALSE(adversary.delays_honest(s, r, 0));
    }
  }
}

TEST(Delays, InvalidProbabilityThrows) {
  NoAdversary inner;
  EXPECT_THROW(DelayingAdversary(inner, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(DelayingAdversary(inner, 1.5, 1), std::invalid_argument);
}

TEST(Delays, DecisionIsDeterministicAndOrderFree) {
  NoAdversary inner;
  DelayingAdversary a(inner, 0.5, 99);
  DelayingAdversary b(inner, 0.5, 99);
  // Query in different orders; decisions must match link-by-link.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(a.delays_honest(s, 0, r), b.delays_honest(s, 0, r));
    }
  }
  EXPECT_EQ(a.delays_honest(2, 1, 0), b.delays_honest(2, 1, 0));
}

TEST(Delays, WrapsInnerByzantineBehaviour) {
  FixedVectorAdversary inner({2}, {9.0});
  DelayingAdversary adversary(inner, 0.3, 5);
  EXPECT_TRUE(adversary.is_byzantine(2));
  EXPECT_FALSE(adversary.is_byzantine(0));
  const auto v = adversary.byzantine_value(2, 0, {});
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ((*v)[0], 9.0);
}

TEST(Delays, BoxGeomAgreementStillConvergesUnderDelays) {
  // Theorem 4.4's proof explicitly covers unequal inbox sizes m_i != m_j;
  // the protocol must converge with random honest delays down to n - t.
  Rng rng(11);
  const std::size_t n = 10;
  const std::size_t t = 2;
  VectorList inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back({rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0)});
  }
  SignFlipAdversary byz({8, 9});
  DelayingAdversary adversary(byz, 0.4, 13);
  AgreementConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.round_function = make_round_function("BOX-GEOM");
  cfg.epsilon = 1e-4;
  cfg.max_rounds = 80;
  const auto result = run_approximate_agreement(inputs, adversary, cfg);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.network.messages_delayed, 0u);
  // Validity still holds.
  VectorList honest_inputs(inputs.begin(), inputs.begin() + (n - t));
  const Hyperbox box = Hyperbox::bounding(honest_inputs);
  for (const auto& out : result.outputs) {
    EXPECT_TRUE(box.contains(out, 1e-6));
  }
}

TEST(Delays, EmaxStillHalvesUnderDelays) {
  Rng rng(12);
  const std::size_t n = 10;
  VectorList inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back({rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0),
                      rng.uniform(-3.0, 3.0)});
  }
  SignFlipAdversary byz({8, 9});
  DelayingAdversary adversary(byz, 0.3, 17);
  AgreementConfig cfg;
  cfg.n = n;
  cfg.t = 2;
  cfg.round_function = make_round_function("BOX-GEOM");
  cfg.epsilon = 0.0;
  const auto result = run_fixed_rounds_agreement(inputs, adversary, 6, cfg);
  const auto& edges = result.trace.honest_max_edge;
  for (std::size_t r = 0; r + 1 < edges.size(); ++r) {
    EXPECT_LE(edges[r + 1], 0.5 * edges[r] + 1e-9);
  }
}

// --- non-finite input hardening ---

class FiniteInputTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FiniteInputTest, NonFiniteInputsRejected) {
  const auto rule = make_rule(GetParam());
  AggregationContext ctx;
  ctx.n = 4;
  ctx.t = 1;
  VectorList nan_inputs{{0.0}, {1.0}, {std::nan("")}, {2.0}};
  VectorList inf_inputs{{0.0}, {1.0},
                        {std::numeric_limits<double>::infinity()}, {2.0}};
  EXPECT_THROW(rule->aggregate(nan_inputs, ctx), std::invalid_argument);
  EXPECT_THROW(rule->aggregate(inf_inputs, ctx), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllRules, FiniteInputTest,
                         ::testing::ValuesIn(all_rule_names()));

// --- IDX loader ---

ml::Dataset tiny_gray_dataset() {
  ml::Dataset data;
  data.channels = 1;
  data.height = 2;
  data.width = 3;
  data.num_classes = 3;
  Rng rng(5);
  for (int i = 0; i < 7; ++i) {
    Vector img(6);
    for (auto& v : img) v = rng.uniform();
    data.images.push_back(img);
    data.labels.push_back(static_cast<std::uint8_t>(i % 3));
  }
  return data;
}

TEST(Idx, RoundTripPreservesShapeLabelsAndPixels) {
  const ml::Dataset original = tiny_gray_dataset();
  const auto bytes = ml::to_idx(original);
  const ml::Dataset parsed = ml::parse_idx(bytes.images, bytes.labels);
  EXPECT_EQ(parsed.height, original.height);
  EXPECT_EQ(parsed.width, original.width);
  EXPECT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.labels, original.labels);
  EXPECT_EQ(parsed.num_classes, original.num_classes);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    for (std::size_t p = 0; p < 6; ++p) {
      // 8-bit quantization error only.
      EXPECT_NEAR(parsed.images[i][p], original.images[i][p], 1.0 / 255.0);
    }
  }
}

TEST(Idx, FileRoundTrip) {
  const ml::Dataset original = tiny_gray_dataset();
  const auto bytes = ml::to_idx(original);
  const std::string img_path = "/tmp/bcl_idx_images_test";
  const std::string lbl_path = "/tmp/bcl_idx_labels_test";
  {
    std::ofstream fi(img_path, std::ios::binary);
    fi << bytes.images;
    std::ofstream fl(lbl_path, std::ios::binary);
    fl << bytes.labels;
  }
  const ml::Dataset loaded = ml::load_idx_dataset(img_path, lbl_path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.labels, original.labels);
  std::remove(img_path.c_str());
  std::remove(lbl_path.c_str());
}

TEST(Idx, RejectsBadMagic) {
  const auto bytes = ml::to_idx(tiny_gray_dataset());
  std::string corrupted = bytes.images;
  corrupted[3] = 0x01;  // wrong magic
  EXPECT_THROW(ml::parse_idx(corrupted, bytes.labels), std::runtime_error);
  std::string bad_labels = bytes.labels;
  bad_labels[3] = 0x03;
  EXPECT_THROW(ml::parse_idx(bytes.images, bad_labels), std::runtime_error);
}

TEST(Idx, RejectsCountMismatchAndTruncation) {
  const auto bytes = ml::to_idx(tiny_gray_dataset());
  std::string fewer_labels = bytes.labels;
  fewer_labels[7] = 0x03;  // claim 3 labels instead of 7
  EXPECT_THROW(ml::parse_idx(bytes.images, fewer_labels),
               std::runtime_error);
  std::string truncated = bytes.images.substr(0, bytes.images.size() - 2);
  EXPECT_THROW(ml::parse_idx(truncated, bytes.labels), std::runtime_error);
  EXPECT_THROW(ml::parse_idx("", bytes.labels), std::runtime_error);
}

TEST(Idx, MissingFileThrows) {
  EXPECT_THROW(ml::load_idx_dataset("/nonexistent/img", "/nonexistent/lbl"),
               std::runtime_error);
}

TEST(Idx, ColorDatasetRejectedByExporter) {
  ml::Dataset color;
  color.channels = 3;
  color.height = color.width = 2;
  EXPECT_THROW(ml::to_idx(color), std::invalid_argument);
}

TEST(Idx, LoadedDatasetFeedsBatchPipeline) {
  const ml::Dataset original = tiny_gray_dataset();
  const auto bytes = ml::to_idx(original);
  const ml::Dataset parsed = ml::parse_idx(bytes.images, bytes.labels);
  const auto batch = parsed.batch({0, 2, 4});
  EXPECT_EQ(batch.shape(), (std::vector<std::size_t>{3, 6}));
  EXPECT_EQ(parsed.batch_labels({1, 3}).size(), 2u);
}

}  // namespace
}  // namespace bcl
