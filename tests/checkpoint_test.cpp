// Tests for model checkpointing (save/load of flat parameter vectors).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ml/architectures.hpp"
#include "ml/checkpoint.hpp"
#include "util/rng.hpp"

namespace bcl::ml {
namespace {

const char* kPath = "/tmp/bcl_checkpoint_test.bin";

TEST(Checkpoint, RoundTripPreservesBits) {
  Rng rng(1);
  Vector params(257);
  for (auto& x : params) x = rng.gaussian();
  save_parameters(kPath, params);
  const Vector loaded = load_parameters(kPath);
  EXPECT_EQ(loaded, params);
  std::remove(kPath);
}

TEST(Checkpoint, EmptyVectorRoundTrips) {
  save_parameters(kPath, {});
  EXPECT_TRUE(load_parameters(kPath).empty());
  std::remove(kPath);
}

TEST(Checkpoint, DimensionValidation) {
  save_parameters(kPath, {1.0, 2.0, 3.0});
  EXPECT_NO_THROW(load_parameters(kPath, 3));
  EXPECT_THROW(load_parameters(kPath, 4), std::runtime_error);
  std::remove(kPath);
}

TEST(Checkpoint, RejectsCorruptedMagic) {
  save_parameters(kPath, {1.0});
  {
    std::fstream f(kPath, std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');
  }
  EXPECT_THROW(load_parameters(kPath), std::runtime_error);
  std::remove(kPath);
}

TEST(Checkpoint, RejectsTruncatedPayload) {
  save_parameters(kPath, {1.0, 2.0, 3.0, 4.0});
  // Truncate the file mid-payload.
  std::ifstream in(kPath, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 9));
  out.close();
  EXPECT_THROW(load_parameters(kPath), std::runtime_error);
  std::remove(kPath);
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(load_parameters("/nonexistent/dir/params.bin"),
               std::runtime_error);
}

TEST(Checkpoint, ModelResumeWorkflow) {
  Model model = make_mlp(12, 8, 6, 4);
  Rng rng(2);
  model.initialize(rng);
  save_parameters(kPath, model.parameters());

  Model resumed = make_mlp(12, 8, 6, 4);
  resumed.set_parameters(load_parameters(kPath, resumed.parameter_count()));
  EXPECT_EQ(resumed.parameters(), model.parameters());
  std::remove(kPath);
}

}  // namespace
}  // namespace bcl::ml
