// Tests for the extended robust baselines (RFA, centered clipping, norm
// clipping) and the smoothed Weiszfeld solver they build on.

#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/registry.hpp"
#include "aggregation/robust_baselines.hpp"
#include "geometry/weiszfeld.hpp"
#include "linalg/hyperbox.hpp"
#include "util/rng.hpp"

namespace bcl {
namespace {

AggregationContext ctx_of(std::size_t n, std::size_t t) {
  AggregationContext ctx;
  ctx.n = n;
  ctx.t = t;
  return ctx;
}

VectorList random_points(Rng& rng, std::size_t n, std::size_t d,
                         double span = 2.0) {
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-span, span);
    pts.push_back(p);
  }
  return pts;
}

// --- smoothed Weiszfeld ---

TEST(SmoothedWeiszfeld, ApproachesExactMedianAsNuShrinks) {
  Rng rng(1);
  const VectorList pts = random_points(rng, 9, 3);
  const Vector exact = geometric_median_point(pts);
  double previous = 1e300;
  for (const double nu : {1.0, 1e-2, 1e-5}) {
    const auto smoothed = smoothed_geometric_median(pts, nu);
    const double err = distance(smoothed.point, exact);
    EXPECT_LE(err, previous + 1e-9);
    previous = err;
  }
  EXPECT_LT(previous, 1e-3);
}

TEST(SmoothedWeiszfeld, HandlesCoincidentPointsWithoutSingularity) {
  // Exact Weiszfeld needs Kuhn's anchor handling here; the smoothed
  // iteration sails through because weights are capped at 1/nu.
  const VectorList pts{{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {4.0, 0.0},
                       {0.0, 4.0}};
  const auto result = smoothed_geometric_median(pts, 1e-3);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(distance(result.point, {0.0, 0.0}), 0.05);
}

TEST(SmoothedWeiszfeld, RejectsBadArguments) {
  EXPECT_THROW(smoothed_geometric_median({}, 0.1), std::invalid_argument);
  EXPECT_THROW(smoothed_geometric_median({{1.0}}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(smoothed_geometric_median({{1.0}}, -1.0),
               std::invalid_argument);
}

TEST(SmoothedWeiszfeld, SinglePointIdentity) {
  const auto result = smoothed_geometric_median({{7.0, -2.0}}, 0.1);
  EXPECT_EQ(result.point, (Vector{7.0, -2.0}));
  EXPECT_TRUE(result.converged);
}

// --- RFA ---

TEST(Rfa, MatchesGeometricMedianOnCleanData) {
  Rng rng(2);
  const VectorList pts = random_points(rng, 8, 3);
  RfaRule rfa;
  const Vector out = rfa.aggregate(pts, ctx_of(8, 2));
  const Vector exact = geometric_median_point(pts);
  EXPECT_LT(distance(out, exact), 1e-3 * (1.0 + norm2(exact)));
}

TEST(Rfa, RobustToOutliers) {
  Rng rng(3);
  VectorList honest = random_points(rng, 8, 3, 1.0);
  VectorList all = honest;
  all.push_back(constant(3, 1000.0));
  all.push_back(constant(3, -1000.0));
  RfaRule rfa;
  const Vector out = rfa.aggregate(all, ctx_of(10, 2));
  EXPECT_TRUE(Hyperbox::bounding(honest).inflated(1.0).contains(out, 1e-6));
}

// --- centered clipping ---

TEST(CenteredClipping, IdentityOnUnanimousInputs) {
  CenteredClippingRule rule;
  const VectorList pts(6, Vector{2.0, -3.0});
  EXPECT_TRUE(approx_equal(rule.aggregate(pts, ctx_of(6, 1)), {2.0, -3.0},
                           1e-9));
}

TEST(CenteredClipping, ClipsLargeOutliers) {
  CenteredClippingRule rule;
  const VectorList pts{{0.0}, {0.1}, {-0.1}, {0.05}, {1000.0}};
  const Vector out = rule.aggregate(pts, ctx_of(5, 1));
  // The outlier's influence is capped at the clip radius per iteration.
  EXPECT_LT(std::abs(out[0]), 1.0);
}

TEST(CenteredClipping, TranslationEquivariant) {
  Rng rng(4);
  CenteredClippingRule rule;
  const VectorList pts = random_points(rng, 7, 3);
  const Vector shift{5.0, -2.0, 9.0};
  VectorList shifted;
  for (const auto& p : pts) shifted.push_back(add(p, shift));
  const Vector a = rule.aggregate(pts, ctx_of(7, 2));
  const Vector b = rule.aggregate(shifted, ctx_of(7, 2));
  EXPECT_TRUE(approx_equal(add(a, shift), b, 1e-9));
}

// --- norm clipping ---

TEST(NormClipping, BoundsEveryContributionByMedianNorm) {
  NormClippingRule rule;
  const VectorList pts{{1.0, 0.0}, {0.0, 1.0}, {0.6, 0.8}, {100.0, 0.0},
                       {0.0, -100.0}};
  const Vector out = rule.aggregate(pts, ctx_of(5, 2));
  // Median norm is 1; the mean of 5 clipped vectors has norm <= 1.
  EXPECT_LE(norm2(out), 1.0 + 1e-9);
}

TEST(NormClipping, LeavesSmallVectorsAlone) {
  NormClippingRule rule;
  const VectorList pts{{0.2, 0.0}, {0.0, 0.2}, {0.1, 0.1}};
  const Vector out = rule.aggregate(pts, ctx_of(3, 0));
  EXPECT_TRUE(approx_equal(out, mean(pts), 1e-12));
}

// --- registry wiring ---

TEST(ExtendedRegistry, CreatesAllExtendedRules) {
  for (const auto& name : extended_rule_names()) {
    const auto rule = make_rule(name);
    ASSERT_NE(rule, nullptr);
    EXPECT_EQ(rule->name(), name);
  }
}

class ExtendedRuleRobustnessTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtendedRuleRobustnessTest, SurvivesColludingOutliers) {
  const auto rule = make_rule(GetParam());
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    VectorList honest = random_points(rng, 8, 3, 1.0);
    VectorList all = honest;
    all.push_back(constant(3, 1e4));
    all.push_back(constant(3, -1e4));
    const Vector out = rule->aggregate(all, ctx_of(10, 2));
    // Outliers in opposite directions: the robust estimate must stay within
    // a moderate blow-up of the honest box (the mean would be at ~2000).
    EXPECT_TRUE(
        Hyperbox::bounding(honest).inflated(2.0).contains(out, 1e-6))
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Extended, ExtendedRuleRobustnessTest,
                         ::testing::Values("RFA", "CCLIP", "NORM-CLIP"));

}  // namespace
}  // namespace bcl
