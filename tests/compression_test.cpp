// Tests for src/compression (codecs, wire-cost model, error feedback,
// registry grammar), the sparse distance path in src/linalg, and the
// end-to-end compression contracts: comp=identity is bitwise the
// uncompressed stack, and top-k under a bandwidth cap delivers an order
// of magnitude fewer bytes in strictly less simulated time.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "agreement/protocol.hpp"
#include "agreement/round_function.hpp"
#include "compression/codec.hpp"
#include "compression/registry.hpp"
#include "experiments/runner.hpp"
#include "network/adversary.hpp"
#include "experiments/scenario.hpp"
#include "linalg/distance_matrix.hpp"
#include "linalg/kernels.hpp"
#include "linalg/sparse_rows.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

using experiments::ScenarioSpec;

Vector random_vector(std::size_t dim, Rng& rng) {
  Vector v(dim);
  for (auto& x : v) x = rng.gaussian();
  return v;
}

// --- CompressedGradient ----------------------------------------------------

TEST(CompressedGradient, WireBytesByLayout) {
  CompressedGradient dense;
  dense.dim = 100;
  dense.values.assign(100, 1.0);
  EXPECT_FALSE(dense.sparse());
  EXPECT_EQ(dense.wire_bytes(), 100 * sizeof(double));

  CompressedGradient sparse;
  sparse.dim = 100;
  sparse.indices = {3, 50};
  sparse.values = {1.0, -2.0};
  EXPECT_TRUE(sparse.sparse());
  EXPECT_EQ(sparse.wire_bytes(),
            2 * (sizeof(double) + sizeof(std::uint32_t)));

  sparse.wire_override = 7;
  EXPECT_EQ(sparse.wire_bytes(), 7u);

  const Vector decoded = sparse.decode();
  ASSERT_EQ(decoded.size(), 100u);
  EXPECT_EQ(decoded[3], 1.0);
  EXPECT_EQ(decoded[50], -2.0);
  EXPECT_EQ(decoded[0], 0.0);
}

// --- codecs ----------------------------------------------------------------

TEST(Codec, IdentityRoundTripsBitwise) {
  Rng rng(1);
  const Vector v = random_vector(257, rng);
  IdentityCodec codec;
  EXPECT_TRUE(codec.identity());
  const CompressedGradient encoded = codec.encode(v, 9, 3, 5);
  EXPECT_EQ(encoded.wire_bytes(), dense_wire_bytes(v.size()));
  EXPECT_EQ(encoded.decode(), v);  // bitwise
}

TEST(Codec, TopKKeepsLargestMagnitudesExactly) {
  const Vector v = {0.1, -5.0, 0.2, 3.0, -0.05, 0.0, 4.0, -0.3};
  TopKCodec codec(3.0 / 8.0);  // k = 3
  EXPECT_EQ(codec.k_for(v.size()), 3u);
  const CompressedGradient encoded = codec.encode(v, 0, 0, 0);
  ASSERT_EQ(encoded.indices, (std::vector<std::uint32_t>{1, 3, 6}));
  EXPECT_EQ(encoded.values, (std::vector<double>{-5.0, 3.0, 4.0}));
  const Vector decoded = encoded.decode();
  EXPECT_EQ(decoded[1], -5.0);  // kept coordinates decode bitwise
  EXPECT_EQ(decoded[0], 0.0);
  EXPECT_EQ(encoded.wire_bytes(),
            3 * (sizeof(double) + sizeof(std::uint32_t)));
}

TEST(Codec, TopKTieBreaksTowardLowerIndex) {
  const Vector v = {1.0, -1.0, 1.0, 1.0};
  TopKCodec codec(0.5);  // k = 2
  const CompressedGradient encoded = codec.encode(v, 0, 0, 0);
  EXPECT_EQ(encoded.indices, (std::vector<std::uint32_t>{0, 1}));
}

TEST(Codec, TopKIsIdempotentOnSparseInput) {
  Rng rng(3);
  const Vector v = random_vector(200, rng);
  TopKCodec codec(0.05);  // k = 10
  const Vector once = codec.encode(v, 0, 0, 0).decode();
  const Vector twice = codec.encode(once, 0, 0, 1).decode();
  EXPECT_EQ(once, twice);  // re-encoding an already-k-sparse vector is exact
}

TEST(Codec, RandKDeterministicPerKeyAndVaryingAcrossRounds) {
  Rng rng(4);
  const Vector v = random_vector(500, rng);
  RandKCodec codec(0.02);  // k = 10
  const auto a = codec.encode(v, 11, 2, 7);
  const auto b = codec.encode(v, 11, 2, 7);
  EXPECT_EQ(a.indices, b.indices);  // pure function of (seed, sender, round)
  EXPECT_EQ(a.values, b.values);
  ASSERT_EQ(a.indices.size(), 10u);
  EXPECT_TRUE(std::is_sorted(a.indices.begin(), a.indices.end()));
  EXPECT_TRUE(std::adjacent_find(a.indices.begin(), a.indices.end()) ==
              a.indices.end());  // distinct
  for (std::size_t j = 0; j < a.indices.size(); ++j) {
    EXPECT_EQ(a.values[j], v[a.indices[j]]);  // kept coordinates exact
  }

  const auto other_round = codec.encode(v, 11, 2, 8);
  const auto other_sender = codec.encode(v, 11, 3, 7);
  EXPECT_NE(a.indices, other_round.indices);
  EXPECT_NE(a.indices, other_sender.indices);
}

TEST(Codec, QsgdQuantizesToLevelGridAndShrinksWire) {
  Rng rng(5);
  const Vector v = random_vector(1000, rng);
  QsgdCodec codec(4);
  const auto encoded = codec.encode(v, 21, 0, 0);
  EXPECT_FALSE(encoded.sparse());

  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double level = std::fabs(encoded.values[i]) * 4.0 / norm;
    EXPECT_NEAR(level, std::round(level), 1e-9);  // on the grid
    EXPECT_LE(level, 4.0 + 1e-9);
    if (encoded.values[i] != 0.0) {
      EXPECT_EQ(encoded.values[i] < 0.0, v[i] < 0.0);  // sign preserved
    }
  }
  // 2 * 4 + 1 = 9 symbols -> 4 bits per coordinate, plus the norm.
  EXPECT_EQ(codec.bits_per_coordinate(), 4u);
  EXPECT_EQ(encoded.wire_bytes(), sizeof(double) + (1000 * 4 + 7) / 8);
  EXPECT_LT(encoded.wire_bytes(), dense_wire_bytes(v.size()) / 10);

  // Deterministic per key.
  const auto again = codec.encode(v, 21, 0, 0);
  EXPECT_EQ(encoded.values, again.values);

  // Zero in, zero out (no division by a zero norm).
  const Vector zeros_vec(16, 0.0);
  const auto zero_enc = codec.encode(zeros_vec, 0, 0, 0);
  EXPECT_EQ(zero_enc.decode(), zeros_vec);
}

// --- registry --------------------------------------------------------------

TEST(CodecRegistry, UnknownCodecListsValidNames) {
  try {
    make_codec("gzip");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    for (const auto& name : all_codec_names()) {
      EXPECT_NE(message.find(name), std::string::npos) << message;
    }
  }
}

TEST(CodecRegistry, UnknownParameterListsValidKeys) {
  try {
    make_codec("topk:k=5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("frac"), std::string::npos) << message;
  }
  EXPECT_THROW(make_codec("identity:frac=0.5"), std::invalid_argument);
  EXPECT_THROW(make_codec("topk:frac"), std::invalid_argument);
  EXPECT_THROW(make_codec("topk:frac=2"), std::invalid_argument);
  EXPECT_THROW(make_codec("topk:frac=0"), std::invalid_argument);
  EXPECT_THROW(make_codec("qsgd:levels=0"), std::invalid_argument);
  EXPECT_THROW(make_codec("qsgd:levels=1.5"), std::invalid_argument);
}

TEST(CodecRegistry, EveryFamilyConstructsWithDefaults) {
  for (const auto& name : all_codec_names()) {
    const CodecPtr codec = make_codec(name);
    ASSERT_NE(codec, nullptr) << name;
    Rng rng(6);
    const Vector v = random_vector(300, rng);
    const auto encoded = codec->encode(v, 1, 2, 3);
    EXPECT_EQ(encoded.dim, v.size()) << name;
    EXPECT_GT(encoded.wire_bytes(), 0u) << name;
    EXPECT_EQ(encoded.decode().size(), v.size()) << name;
  }
  EXPECT_TRUE(make_codec("identity")->identity());
  EXPECT_FALSE(make_codec("topk:frac=0.5")->identity());
}

// --- error feedback --------------------------------------------------------

TEST(ErrorFeedback, IdentityIsABitwisePassthrough) {
  Rng rng(7);
  const Vector g = random_vector(100, rng);
  IdentityCodec codec;
  ErrorFeedback ef(2);
  const auto encoded = ef.compress(codec, 0, 1, 0, g.data(), g.size());
  EXPECT_EQ(encoded.decode(), g);
  EXPECT_TRUE(ef.residual(1).empty());  // no residual arithmetic at all
}

TEST(ErrorFeedback, ResidualIsExactlyTheDroppedMass) {
  Rng rng(8);
  const Vector g = random_vector(50, rng);
  TopKCodec codec(0.1);  // k = 5
  ErrorFeedback ef(1);
  const auto encoded = ef.compress(codec, 0, 0, 0, g.data(), g.size());
  const Vector decoded = encoded.decode();
  const Vector& residual = ef.residual(0);
  ASSERT_EQ(residual.size(), g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(residual[i] + decoded[i], g[i]);  // exact for sparse codecs
  }
}

TEST(ErrorFeedback, MassIsConservedAcrossRounds) {
  // EF-SGD's defining property: what the codec drops is not lost — after T
  // rounds, (sum of transmitted gradients) + residual = sum of true
  // gradients, so sparsified training tracks the uncompressed trajectory.
  const std::size_t dim = 64;
  Rng rng(9);
  TopKCodec codec(0.05);  // k = 4 of 64 per round
  ErrorFeedback ef(1);
  Vector true_sum(dim, 0.0);
  Vector sent_sum(dim, 0.0);
  for (std::size_t round = 0; round < 40; ++round) {
    const Vector g = random_vector(dim, rng);
    for (std::size_t i = 0; i < dim; ++i) true_sum[i] += g[i];
    const Vector decoded =
        ef.compress(codec, 13, 0, round, g.data(), dim).decode();
    for (std::size_t i = 0; i < dim; ++i) sent_sum[i] += decoded[i];
  }
  const Vector& residual = ef.residual(0);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(sent_sum[i] + residual[i], true_sum[i], 1e-9);
  }
}

// --- sparse kernels and the sparse distance path ---------------------------

TEST(SparseKernels, DotsMatchDense) {
  Rng rng(10);
  const std::size_t dim = 400;
  TopKCodec codec(0.08);
  const Vector a = random_vector(dim, rng);
  const Vector b = random_vector(dim, rng);
  const auto ea = codec.encode(a, 0, 0, 0);
  const auto eb = codec.encode(b, 0, 1, 0);
  const Vector da = ea.decode();
  const Vector db = eb.decode();

  double dense_dot = 0.0;
  double dense_diff = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    dense_dot += da[i] * db[i];
    const double d = da[i] - db[i];
    dense_diff += d * d;
  }
  const double sd = kernels::sparse_dot_sparse(
      ea.indices.data(), ea.values.data(), ea.nnz(), eb.indices.data(),
      eb.values.data(), eb.nnz());
  EXPECT_NEAR(sd, dense_dot, 1e-10);
  const double sdd = kernels::sparse_dot_dense(
      ea.indices.data(), ea.values.data(), ea.nnz(), db.data());
  EXPECT_NEAR(sdd, dense_dot, 1e-10);
  const double sdn = kernels::sparse_diff_norm2(
      ea.indices.data(), ea.values.data(), ea.nnz(), eb.indices.data(),
      eb.values.data(), eb.nnz());
  EXPECT_NEAR(sdn, dense_diff, 1e-10);
}

TEST(SparseRows, ValidatesAndDecodes) {
  SparseRows rows(8);
  const std::vector<std::uint32_t> idx = {1, 5};
  const std::vector<double> val = {2.0, -3.0};
  rows.push_row(idx.data(), val.data(), idx.size());
  const Vector dense_row = {0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 4.0};
  rows.push_dense_row(dense_row.data(), dense_row.size());
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_EQ(rows.row_nnz(0), 2u);
  EXPECT_EQ(rows.row_nnz(1), 2u);
  Vector out(8);
  rows.decode_row_into(1, out.data());
  EXPECT_EQ(out, dense_row);
  EXPECT_DOUBLE_EQ(rows.density(), 4.0 / 16.0);

  const std::vector<std::uint32_t> unsorted = {5, 1};
  EXPECT_THROW(rows.push_row(unsorted.data(), val.data(), 2),
               std::invalid_argument);
  const std::vector<std::uint32_t> oob = {1, 8};
  EXPECT_THROW(rows.push_row(oob.data(), val.data(), 2),
               std::invalid_argument);
}

TEST(SparseDistanceMatrix, AgreesWithDenseKernelsTo1e9) {
  // The acceptance bound of the sparse path: distances over top-k payloads
  // computed through the sparse Gram kernels agree with the dense builds
  // to <= 1e-9, including a dense (Byzantine-like) row in the mix.
  Rng rng(11);
  const std::size_t dim = 600;
  const std::size_t m = 12;
  TopKCodec codec(0.03);
  SparseRows sparse(dim);
  GradientBatch dense_batch(m, dim);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    const Vector v = random_vector(dim, rng);
    const auto encoded = codec.encode(v, 0, i, 0);
    encoded.append_row_to(sparse);
    encoded.decode_into(dense_batch.row(i));
  }
  const Vector outlier = random_vector(dim, rng);  // dense row rides along
  sparse.push_dense_row(outlier.data(), dim);
  dense_batch.set_row(m - 1, outlier);

  const DistanceMatrix from_sparse(sparse);
  const DistanceMatrix from_batch(dense_batch);
  const DistanceMatrix from_vectors(dense_batch.to_vectors());
  ASSERT_EQ(from_sparse.size(), m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_NEAR(from_sparse.dist(i, j), from_batch.dist(i, j), 1e-9);
      EXPECT_NEAR(from_sparse.dist(i, j), from_vectors.dist(i, j), 1e-9);
    }
  }

  // The parallel build is identical to the serial one.
  ThreadPool pool(4);
  const DistanceMatrix parallel(sparse, &pool);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(parallel.dist2(i, j), from_sparse.dist2(i, j));
    }
  }
}

TEST(SparseDistanceMatrix, NearDuplicateRowsSurviveCancellation) {
  // Two sparse rows that differ in one tiny coordinate: the Gram identity
  // alone would cancel catastrophically; the guard recompute through the
  // sparse difference form must keep full precision.
  SparseRows rows(1000);
  const std::vector<std::uint32_t> idx = {10, 500};
  const std::vector<double> a = {1000.0, 1000.0};
  const std::vector<double> b = {1000.0, 1000.0 + 1e-6};
  rows.push_row(idx.data(), a.data(), 2);
  rows.push_row(idx.data(), b.data(), 2);
  const DistanceMatrix matrix(rows);
  // Tolerance covers fl(1000 + 1e-6)'s representation error (~6e-14), not
  // the ~1e-3 garbage the unguarded identity would produce.
  EXPECT_NEAR(matrix.dist(0, 1), 1e-6, 1e-12);
}

// --- agreement integration -------------------------------------------------

TEST(AgreementComp, SubRoundZeroShipsInputsUntransformed) {
  // The trainers already codec-encoded the agreement inputs (their loss
  // is in the EF residuals), so sub-round 0 must broadcast them as-is —
  // a stochastic re-encode (rand-k under a fresh stream) would land on a
  // different support and silently destroy the gradient.  With a single
  // sub-round the compressed run must therefore match the uncompressed
  // run bitwise, while still being priced at the encoded wire sizes.
  const std::size_t n = 4;
  const std::size_t dim = 200;
  Rng rng(31);
  RandKCodec codec(0.05);
  VectorList inputs;
  std::vector<std::size_t> wire(n, HonestProcess::kDenseWire);
  for (std::size_t i = 0; i < n; ++i) {
    const Vector g = random_vector(dim, rng);
    const auto encoded = codec.encode(g, 5, i, 0);  // "trainer" encode
    inputs.push_back(encoded.decode());
    wire[i] = encoded.wire_bytes();
  }

  AgreementConfig base;
  base.n = n;
  base.t = 1;
  base.round_function = make_round_function("BOX-GEOM");
  AgreementConfig compressed = base;
  compressed.codec = &codec;
  compressed.codec_seed = 99;  // a fresh stream, as the trainers mix it
  compressed.input_wire_bytes = wire;

  NoAdversary adversary_a;
  NoAdversary adversary_b;
  const auto plain =
      run_fixed_rounds_agreement(inputs, adversary_a, 1, base);
  const auto comp =
      run_fixed_rounds_agreement(inputs, adversary_b, 1, compressed);
  ASSERT_EQ(plain.outputs.size(), comp.outputs.size());
  for (std::size_t i = 0; i < plain.outputs.size(); ++i) {
    EXPECT_EQ(plain.outputs[i], comp.outputs[i]);  // bitwise
  }
  // ...but the wire accounting reflects the encoded sizes.
  EXPECT_LT(comp.network.bytes_delivered, plain.network.bytes_delivered);
  EXPECT_GT(comp.network.bytes_delivered, 0u);
}

// --- scenario integration --------------------------------------------------

TEST(ScenarioComp, KeyRoundTripsAndValidatesEagerly) {
  const auto spec =
      ScenarioSpec::parse("rule=KRUM comp=topk:frac=0.02 f=1");
  EXPECT_EQ(spec.comp, "topk:frac=0.02");
  EXPECT_EQ(spec, ScenarioSpec::parse(spec.to_string()));
  EXPECT_NE(spec.name().find("topk:frac=0.02"), std::string::npos);
  // The default stays out of the derived name.
  EXPECT_EQ(ScenarioSpec{}.name().find("identity"), std::string::npos);
  EXPECT_THROW(ScenarioSpec::parse("comp=gzip"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("comp=topk:frac=0"),
               std::invalid_argument);
}

// Collects every per-round metric that the trainers compute
// deterministically, for bitwise comparisons across configurations.
std::vector<std::vector<double>> deterministic_history(
    const TrainingResult& result) {
  std::vector<std::vector<double>> out;
  for (const auto& m : result.history) {
    out.push_back({m.accuracy, m.accuracy_min, m.accuracy_max,
                   m.mean_honest_loss, m.learning_rate, m.disagreement,
                   m.gradient_diameter, m.sim_seconds});
  }
  return out;
}

TEST(ScenarioComp, IdentityIsBitwiseEqualToOmittingComp) {
  // comp=identity must preserve every existing scenario result bitwise —
  // the compression path is genuinely skipped, not approximately skipped.
  for (const char* topology : {"centralized", "decentralized"}) {
    const std::string base = std::string("topology=") + topology +
                             " rule=BOX-GEOM attack=sign-flip n=4 f=1 "
                             "rounds=2 eval-max=40 "
                             "net=async:delay=exp,mean=2,bw=50000";
    experiments::ScenarioRunner runner;
    const auto without = runner.run(ScenarioSpec::parse(base));
    const auto with =
        runner.run(ScenarioSpec::parse(base + " comp=identity"));
    ASSERT_TRUE(without.error.empty()) << without.error;
    ASSERT_TRUE(with.error.empty()) << with.error;
    EXPECT_EQ(deterministic_history(without.result),
              deterministic_history(with.result))
        << topology;
    // Identity still accounts (dense) bytes, identically in both.
    EXPECT_GT(without.result.bytes_total(), 0.0);
    EXPECT_EQ(without.result.bytes_total(), with.result.bytes_total());
    EXPECT_DOUBLE_EQ(without.result.compression_ratio(), 1.0);
  }
}

TEST(ScenarioComp, TopKUnderBandwidthCutsBytesTenfoldAndTime) {
  // The headline acceptance contract: with comp=topk:frac=0.01 and bw set,
  // the sweep delivers >= 10x fewer bytes and strictly lower sim_seconds
  // than identity, in both topologies.
  for (const char* topology : {"centralized", "decentralized"}) {
    const std::string base = std::string("topology=") + topology +
                             " rule=BOX-GEOM attack=sign-flip n=6 f=1 "
                             "rounds=2 eval-max=40 "
                             "net=async:delay=const,mean=1,bw=100000";
    experiments::ScenarioRunner runner;
    const auto identity = runner.run(ScenarioSpec::parse(base));
    const auto topk =
        runner.run(ScenarioSpec::parse(base + " comp=topk:frac=0.01"));
    ASSERT_TRUE(identity.error.empty()) << identity.error;
    ASSERT_TRUE(topk.error.empty()) << topk.error;

    const double identity_bytes = identity.result.bytes_total();
    const double topk_bytes = topk.result.bytes_total();
    ASSERT_GT(topk_bytes, 0.0) << topology;
    EXPECT_GE(identity_bytes / topk_bytes, 10.0) << topology;
    EXPECT_GE(topk.result.compression_ratio(), 10.0) << topology;

    const double identity_sim = identity.result.sim_seconds_total();
    const double topk_sim = topk.result.sim_seconds_total();
    EXPECT_GT(identity_sim, 0.0) << topology;
    EXPECT_LT(topk_sim, identity_sim) << topology;
  }
}

TEST(ScenarioComp, EveryCodecFamilyTrainsEndToEnd) {
  // Smoke over the whole registry in both topologies: no codec family may
  // crash a run, and the byte accounting must be populated.
  for (const auto& name : all_codec_names()) {
    for (const char* topology : {"centralized", "decentralized"}) {
      const std::string spec_text = std::string("topology=") + topology +
                                    " rule=MEAN attack=none n=4 f=0 "
                                    "rounds=2 eval-max=40 comp=" +
                                    name;
      experiments::ScenarioRunner runner;
      const auto summary = runner.run(ScenarioSpec::parse(spec_text));
      EXPECT_TRUE(summary.error.empty())
          << name << "/" << topology << ": " << summary.error;
      EXPECT_EQ(summary.result.history.size(), 2u);
      EXPECT_GT(summary.result.bytes_total(), 0.0) << name;
      EXPECT_GE(summary.result.compression_ratio(), 1.0) << name;
    }
  }
}

TEST(ScenarioComp, ErrorFeedbackKeepsTopKTrainingClose) {
  // Convergence guard: EF-compressed top-k training on the honest-only
  // scenario must stay within a modest band of the uncompressed loss after
  // a few rounds (it is allowed to differ — the codec is lossy — but EF
  // must prevent collapse).
  const std::string base =
      "topology=centralized rule=MEAN attack=none n=4 f=0 rounds=8 "
      "eval-max=60";
  experiments::ScenarioRunner runner;
  const auto dense = runner.run(ScenarioSpec::parse(base));
  const auto topk =
      runner.run(ScenarioSpec::parse(base + " comp=topk:frac=0.05"));
  ASSERT_TRUE(dense.error.empty());
  ASSERT_TRUE(topk.error.empty());
  const double dense_loss = dense.result.history.back().mean_honest_loss;
  const double topk_loss = topk.result.history.back().mean_honest_loss;
  const double start_loss = dense.result.history.front().mean_honest_loss;
  // Uncompressed training reduces the loss; EF top-k must achieve a real
  // fraction of that reduction rather than stalling at the start.
  ASSERT_LT(dense_loss, start_loss);
  EXPECT_LT(topk_loss, start_loss - 0.25 * (start_loss - dense_loss));
}

}  // namespace
}  // namespace bcl
