// Property/metamorphic tests over EVERY rule in the aggregation registry
// (canonical + extended), plus the sketched-vs-exact agreement guarantees
// of aggregation/sketched.hpp and the shared Byzantine-budget clamp of
// aggregation/budget.hpp.
//
// The point of testing properties instead of outputs: approximate and
// registry-wide code paths are exactly where silent wrongness hides, and
// a property ("permuting the inbox cannot change the aggregate") stays
// valid for every rule anyone registers later without this file knowing
// its closed form.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "aggregation/budget.hpp"
#include "aggregation/registry.hpp"
#include "aggregation/sharded.hpp"
#include "aggregation/sketched.hpp"
#include "linalg/distance_matrix.hpp"
#include "linalg/gradient_batch.hpp"
#include "linalg/workspace.hpp"
#include "util/rng.hpp"

namespace bcl {
namespace {

AggregationContext ctx_of(std::size_t n, std::size_t t) {
  AggregationContext ctx;
  ctx.n = n;
  ctx.t = t;
  return ctx;
}

/// Every name the registry can materialize: the paper's canonical set plus
/// the extended baselines and sketched variants.
std::vector<std::string> every_rule_name() {
  std::vector<std::string> names = all_rule_names();
  for (const auto& name : extended_rule_names()) names.push_back(name);
  return names;
}

/// n - t honest points clustered in [-1, 1]^d plus t far outliers; random
/// continuous coordinates, so score/distance ties have measure zero and
/// selection rules are unambiguous.
VectorList clustered_inputs(std::size_t n, std::size_t t, std::size_t d,
                            std::uint64_t seed) {
  Rng rng(seed);
  VectorList inputs;
  for (std::size_t i = 0; i < n - t; ++i) {
    Vector v(d);
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    inputs.push_back(v);
  }
  for (std::size_t i = 0; i < t; ++i) {
    Vector v(d);
    for (auto& x : v) x = rng.uniform(25.0, 35.0) * (i % 2 == 0 ? 1.0 : -1.0);
    inputs.push_back(v);
  }
  return inputs;
}

/// Coordinate-wise closeness with a relative-scaled tolerance (iterative
/// solvers like Weiszfeld re-run on transformed inputs, so outputs match
/// to solver precision, not bitwise).
void expect_close(const std::string& rule, const Vector& a, const Vector& b,
                  double tol) {
  ASSERT_EQ(a.size(), b.size()) << rule;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol * std::max(1.0, std::abs(a[i])))
        << rule << " coordinate " << i;
  }
}

void expect_bitwise(const std::string& rule, const Vector& a,
                    const Vector& b) {
  ASSERT_EQ(a.size(), b.size()) << rule;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << rule << " coordinate " << i;
  }
}

// --- registry-wide metamorphic properties ----------------------------------

TEST(RuleProperties, PermutationInvariance) {
  const std::size_t n = 9, t = 2, d = 24;
  const AggregationContext ctx = ctx_of(n, t);
  const VectorList inputs = clustered_inputs(n, t, d, 17);

  // A fixed nontrivial permutation (reverse) and a pseudorandom shuffle.
  VectorList reversed(inputs.rbegin(), inputs.rend());
  VectorList shuffled = inputs;
  Rng rng(23);
  rng.shuffle(shuffled);

  for (const auto& name : every_rule_name()) {
    const auto rule = make_rule(name);
    const Vector base = rule->aggregate(inputs, ctx);
    expect_close(name, rule->aggregate(reversed, ctx), base, 1e-6);
    expect_close(name, rule->aggregate(shuffled, ctx), base, 1e-6);
  }
}

TEST(RuleProperties, TranslationEquivariance) {
  const std::size_t n = 9, t = 2, d = 24;
  const AggregationContext ctx = ctx_of(n, t);
  const VectorList inputs = clustered_inputs(n, t, d, 19);

  Rng rng(29);
  Vector shift(d);
  for (auto& x : shift) x = rng.uniform(-5.0, 5.0);
  VectorList shifted = inputs;
  for (auto& v : shifted) {
    for (std::size_t i = 0; i < d; ++i) v[i] += shift[i];
  }

  for (const auto& name : every_rule_name()) {
    if (name == "NORM-CLIP") {
      // Documented exception: NORM-CLIP clips norms measured from the
      // origin, so it is intentionally NOT translation-equivariant (see
      // aggregation/registry.hpp).
      continue;
    }
    const auto rule = make_rule(name);
    Vector expected = rule->aggregate(inputs, ctx);
    for (std::size_t i = 0; i < d; ++i) expected[i] += shift[i];
    expect_close(name, rule->aggregate(shifted, ctx), expected, 1e-5);
  }
}

TEST(RuleProperties, DuplicateHonestRowsStayFiniteAndBounded) {
  // Duplicated (coincident) rows are the classic degeneracy of
  // distance-based and Weiszfeld-based rules (zero pairwise distances /
  // singular weights).  Every registry rule must sail through and land
  // inside the coordinate box spanned by the inputs and the origin (the
  // origin joins the box because NORM-CLIP contracts toward it).
  const std::size_t n = 9, t = 2, d = 16;
  const AggregationContext ctx = ctx_of(n, t);
  VectorList inputs = clustered_inputs(n, t, d, 31);
  inputs[1] = inputs[0];  // exact duplicate honest row
  inputs[4] = inputs[0];  // triple coincidence for good measure

  Vector lo(d, 0.0), hi(d, 0.0);
  for (const auto& v : inputs) {
    for (std::size_t i = 0; i < d; ++i) {
      lo[i] = std::min(lo[i], v[i]);
      hi[i] = std::max(hi[i], v[i]);
    }
  }

  for (const auto& name : every_rule_name()) {
    const auto rule = make_rule(name);
    const Vector out = rule->aggregate(inputs, ctx);
    ASSERT_EQ(out.size(), d) << name;
    for (std::size_t i = 0; i < d; ++i) {
      ASSERT_TRUE(std::isfinite(out[i])) << name << " coordinate " << i;
      EXPECT_GE(out[i], lo[i] - 1e-6) << name << " coordinate " << i;
      EXPECT_LE(out[i], hi[i] + 1e-6) << name << " coordinate " << i;
    }
  }
}

// --- sketched-vs-exact agreement -------------------------------------------

// dim > SketchOptions::k so the sketched decision path actually engages
// (at dim <= k the rules take the exact path outright).
constexpr std::size_t kSketchDim = 512;

TEST(SketchedRules, AgreeWithExactWinnersOnSeparableInputs) {
  const std::size_t n = 9, t = 2;
  const AggregationContext ctx = ctx_of(n, t);
  const VectorList inputs = clustered_inputs(n, t, kSketchDim, 37);
  // Cluster radius ~1 vs outlier distance ~30*sqrt(d): the Krum score gap
  // and the MD diameter gap are orders of magnitude beyond the JL error
  // bound, so the sketch must certify the exact winner, not fall back.
  const struct {
    const char* sketched;
    const char* exact;
  } pairs[] = {{"SKETCH-KRUM", "KRUM"},
               {"SKETCH-MULTIKRUM-3", "MULTIKRUM-3"},
               {"SKETCH-MD-MEAN", "MD-MEAN"}};
  for (const auto& pair : pairs) {
    const Vector approx = make_rule(pair.sketched)->aggregate(inputs, ctx);
    const Vector exact = make_rule(pair.exact)->aggregate(inputs, ctx);
    // Selections agree; outputs are built from the same exact rows (the
    // tolerance only covers summation-order differences in the Krum-q /
    // MD means).
    expect_close(pair.sketched, approx, exact, 1e-9);
  }
}

TEST(SketchedRules, KrumWinnerIsIdenticalRowOnSeparableInputs) {
  // Krum returns one input row verbatim, so sketched-vs-exact agreement
  // is bitwise — not merely close — when the margin is resolvable.
  const std::size_t n = 9, t = 2;
  const AggregationContext ctx = ctx_of(n, t);
  const VectorList inputs = clustered_inputs(n, t, kSketchDim, 41);
  expect_bitwise("SKETCH-KRUM",
                 make_rule("SKETCH-KRUM")->aggregate(inputs, ctx),
                 make_rule("KRUM")->aggregate(inputs, ctx));
}

TEST(SketchedRules, ForcedFallbackIsBitwiseExactOnAdversarialNearTie) {
  // The adversarial near-tie: every honest row coincides, so every score
  // and diameter margin is exactly zero and no sketch precision could
  // separate the top-k neighbor sets.  With force_fallback the rules must
  // take the exact path and reproduce the unsketched output bitwise.
  const std::size_t n = 9, t = 2;
  const AggregationContext ctx = ctx_of(n, t);
  VectorList inputs = clustered_inputs(n, t, kSketchDim, 43);
  for (std::size_t i = 1; i < n - t; ++i) inputs[i] = inputs[0];

  SketchOptions forced;
  forced.force_fallback = true;
  expect_bitwise("SKETCH-KRUM(forced)",
                 SketchedKrumRule(forced).aggregate(inputs, ctx),
                 make_rule("KRUM")->aggregate(inputs, ctx));
  expect_bitwise("SKETCH-MULTIKRUM-3(forced)",
                 SketchedMultiKrumRule(3, forced).aggregate(inputs, ctx),
                 make_rule("MULTIKRUM-3")->aggregate(inputs, ctx));
  expect_bitwise("SKETCH-MD-MEAN(forced)",
                 SketchedMdMeanRule(forced).aggregate(inputs, ctx),
                 make_rule("MD-MEAN")->aggregate(inputs, ctx));
}

TEST(SketchedRules, NearTieTriggersAutomaticFallback) {
  // Same near-tie without the test hook: the margin guard itself must
  // detect the unresolvable gap and recompute exactly, so the sketched
  // rules still match the exact rules bitwise.
  const std::size_t n = 9, t = 2;
  const AggregationContext ctx = ctx_of(n, t);
  VectorList inputs = clustered_inputs(n, t, kSketchDim, 47);
  for (std::size_t i = 1; i < n - t; ++i) inputs[i] = inputs[0];

  expect_bitwise("SKETCH-KRUM",
                 make_rule("SKETCH-KRUM")->aggregate(inputs, ctx),
                 make_rule("KRUM")->aggregate(inputs, ctx));
  expect_bitwise("SKETCH-MD-MEAN",
                 make_rule("SKETCH-MD-MEAN")->aggregate(inputs, ctx),
                 make_rule("MD-MEAN")->aggregate(inputs, ctx));
}

// --- view batches and shared Gram (the sub-round sharing contract) ---------

TEST(RuleProperties, ViewBatchMatchesOwnedBitwise) {
  // The agreement protocol feeds every rule borrowed row-table views of
  // the engine's payload spans (AgreementConfig::inbox_views).  Same
  // bytes, same kernels: every registry rule must produce bit-identical
  // output on a view of the rows it would get as an owned batch — or
  // throw loudly (check_owned) instead of silently reading a stale flat
  // buffer.
  const std::size_t n = 9, t = 2, d = 24;
  const AggregationContext ctx = ctx_of(n, t);
  const VectorList inputs = clustered_inputs(n, t, d, 53);
  const GradientBatch owned = GradientBatch::from(inputs);
  std::vector<const double*> table;
  table.reserve(n);
  for (std::size_t i = 0; i < n; ++i) table.push_back(owned.row(i));
  const GradientBatch borrowed = GradientBatch::view(table.data(), n, d);

  for (const auto& name : every_rule_name()) {
    const auto rule = make_rule(name);
    AggregationWorkspace owned_ws(owned);
    AggregationWorkspace view_ws(borrowed);
    expect_bitwise(name + " (view)",
                   rule->aggregate(owned, owned_ws, ctx),
                   rule->aggregate(borrowed, view_ws, ctx));
  }
}

TEST(RuleProperties, SharedGramMatchesPrivateBitwise) {
  // The cross-node sharing layer hands rules a workspace borrowing a
  // distance matrix built by another node over the identical inbox.  The
  // borrowed build must be indistinguishable from a private one for every
  // registry rule (rules that never touch distances pass trivially).
  const std::size_t n = 9, t = 2, d = 24;
  const AggregationContext ctx = ctx_of(n, t);
  const VectorList inputs = clustered_inputs(n, t, d, 59);
  const GradientBatch batch = GradientBatch::from(inputs);
  const DistanceMatrix shared(batch, nullptr);

  for (const auto& name : every_rule_name()) {
    const auto rule = make_rule(name);
    AggregationWorkspace private_ws(batch);
    AggregationWorkspace shared_ws(batch, &shared);
    expect_bitwise(name + " (shared gram)",
                   rule->aggregate(batch, private_ws, ctx),
                   rule->aggregate(batch, shared_ws, ctx));
  }
}

// --- the shared Byzantine-budget clamp -------------------------------------

TEST(ByzantineBudget, ClampMatchesThinCohortRule) {
  // (rows - 1) / 3: the largest t with 3t < rows.
  EXPECT_EQ(clamp_byzantine_budget(5, 0), 0u);
  EXPECT_EQ(clamp_byzantine_budget(5, 1), 0u);
  EXPECT_EQ(clamp_byzantine_budget(5, 3), 0u);
  EXPECT_EQ(clamp_byzantine_budget(5, 4), 1u);
  EXPECT_EQ(clamp_byzantine_budget(5, 7), 2u);
  EXPECT_EQ(clamp_byzantine_budget(5, 16), 5u);   // t already valid
  EXPECT_EQ(clamp_byzantine_budget(5, 100), 5u);  // never raises t
}

TEST(ByzantineBudget, RootBudgetCountsCorruptedShardOutputs) {
  // One fault corrupts at most one shard output, so the root budget is
  // min(t, shards), re-clamped to the shard-count row bound.
  EXPECT_EQ(root_byzantine_budget(5, 1), 0u);
  EXPECT_EQ(root_byzantine_budget(5, 4), 1u);
  EXPECT_EQ(root_byzantine_budget(1, 16), 1u);
  EXPECT_EQ(root_byzantine_budget(8, 16), 5u);  // (16-1)/3 caps it
}

// --- sharded aggregation ---------------------------------------------------

TEST(ShardedAggregation, SingleShardIsBitwiseTheFlatRule) {
  const std::size_t n = 9, t = 2, d = 32;
  const AggregationContext ctx = ctx_of(n, t);
  const VectorList inputs = clustered_inputs(n, t, d, 53);
  const GradientBatch batch = GradientBatch::from(inputs);
  const auto rule = make_rule("KRUM");

  AggregationWorkspace flat_ws(batch);
  const Vector flat = rule->aggregate(batch, flat_ws, ctx);
  AggregationWorkspace sharded_ws(batch);
  const Vector sharded =
      aggregate_sharded(batch, sharded_ws, *rule, *rule, 1, ctx);
  expect_bitwise("KRUM/shards=1", sharded, flat);
}

TEST(ShardedAggregation, MeanOverMeanIsShardCountInvariant) {
  // The MEAN (x) MEAN fast path computes one global mean in row order, so
  // the result is bitwise identical for every shard count — this is what
  // makes the shards-in-{1,4,16} artifact-determinism test possible.
  const std::size_t n = 16, t = 0, d = 24;
  const AggregationContext ctx = ctx_of(n, t);
  const VectorList inputs = clustered_inputs(n, t, d, 59);
  const GradientBatch batch = GradientBatch::from(inputs);
  const auto mean_rule = make_rule("MEAN");

  AggregationWorkspace ws1(batch);
  const Vector one =
      aggregate_sharded(batch, ws1, *mean_rule, *mean_rule, 1, ctx);
  for (const std::size_t shards : {4u, 16u, 64u}) {
    AggregationWorkspace ws(batch);
    const Vector out =
        aggregate_sharded(batch, ws, *mean_rule, *mean_rule, shards, ctx);
    expect_bitwise("MEAN/shards=" + std::to_string(shards), out, one);
  }
}

TEST(ShardedAggregation, RobustShardsRejectConcentratedOutliers) {
  // 16 rows, t = 3, 4 shards of 4 rows: even if all 3 Byzantine rows land
  // in one shard, the per-shard budget (rows-1)/3 = 1 means at most one
  // shard output is corrupted, and the root rule (budget >= 1 over 4
  // shards) discards it.  The final aggregate must sit in the honest box.
  const std::size_t n = 16, t = 3, d = 8;
  const AggregationContext ctx = ctx_of(n, t);
  VectorList inputs = clustered_inputs(n, 0, d, 61);
  // Concentrate 3 outliers contiguously so the contiguous shard split
  // puts them all in shard 0 (the adversarial placement).
  for (std::size_t i = 0; i < 3; ++i) {
    for (auto& x : inputs[i]) x = 1e6;
  }
  const GradientBatch batch = GradientBatch::from(inputs);
  const auto rule = make_rule("CW-MEDIAN");
  AggregationWorkspace ws(batch);
  const Vector out = aggregate_sharded(batch, ws, *rule, *rule, 4, ctx);
  for (std::size_t i = 0; i < d; ++i) {
    ASSERT_TRUE(std::isfinite(out[i]));
    EXPECT_LE(std::abs(out[i]), 1.5) << "coordinate " << i;
  }
}

}  // namespace
}  // namespace bcl
