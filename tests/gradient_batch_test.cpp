// Regression suite for the contiguous GradientBatch layout, the Gram-trick
// distance build, and the batch-native rule/layer paths.
//
// The contracts under test:
//  - Gram-trick distances agree with the exact per-pair build within 1e-9
//    relative tolerance on randomized inputs (and exactly for duplicate
//    rows), serial and pool builds bitwise identical;
//  - every relabeled rule (Krum, Multi-Krum, MDA, MD-GEOM, medoid, mean,
//    CW-median, trimmed mean) returns identical selections/outputs through
//    the batch entry point as through the legacy VectorList path;
//  - the im2col Conv2D matches the direct convolution exactly on forward
//    and to 1e-12 on gradients (the accumulation orders differ).

#include <gtest/gtest.h>

#include <cmath>

#include "core/bcl.hpp"
#include "ml/conv2d.hpp"

namespace bcl {
namespace {

VectorList random_points(Rng& rng, std::size_t m, std::size_t d) {
  VectorList pts;
  for (std::size_t i = 0; i < m; ++i) {
    Vector v(d);
    for (auto& x : v) x = rng.uniform(-10.0, 10.0);
    pts.push_back(v);
  }
  return pts;
}

// --- layout ---------------------------------------------------------------

TEST(GradientBatch, RoundTripsThroughVectorList) {
  Rng rng(31);
  const VectorList pts = random_points(rng, 7, 5);
  const GradientBatch batch = GradientBatch::from(pts);
  EXPECT_EQ(batch.rows(), pts.size());
  EXPECT_EQ(batch.dim(), pts.front().size());
  EXPECT_EQ(batch.to_vectors(), pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(batch.row_copy(i), pts[i]);
  }
}

TEST(GradientBatch, SetRowChecksDimensions) {
  GradientBatch batch(3, 4);
  EXPECT_THROW(batch.set_row(0, Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(batch.set_row(3, zeros(4)), std::invalid_argument);
  batch.set_row(1, Vector{1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(batch.row_copy(1), (Vector{1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(batch.row_copy(0), zeros(4));
}

TEST(GradientBatch, RejectsRaggedInput) {
  EXPECT_THROW(GradientBatch::from(VectorList{{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
}

TEST(GradientBatch, MeanMatchesVectorListMeanExactly) {
  Rng rng(32);
  const VectorList pts = random_points(rng, 9, 33);
  EXPECT_EQ(mean(GradientBatch::from(pts)), mean(pts));
}

// --- kernel contracts -----------------------------------------------------

TEST(Kernels, MatmulAbtIsBitwiseSequentialPerEntry) {
  Rng rng(30);
  const std::size_t ma = 5, mb = 11, k = 37;
  std::vector<double> a(ma * k), b(mb * k);
  for (auto& v : a) v = rng.uniform(-3.0, 3.0);
  for (auto& v : b) v = rng.uniform(-3.0, 3.0);
  std::vector<double> c0(ma * mb, 0.0);
  kernels::matmul_abt(a.data(), ma, b.data(), mb, k, c0.data(), mb);
  std::vector<double> c1(ma * mb, 0.5);  // non-zero seed (the conv bias case)
  kernels::matmul_abt(a.data(), ma, b.data(), mb, k, c1.data(), mb);
  for (std::size_t i = 0; i < ma; ++i) {
    for (std::size_t j = 0; j < mb; ++j) {
      // The documented contract: the accumulator is seeded with the
      // existing C value and products are added in increasing k — with a
      // zero seed that is exactly dot_seq.
      EXPECT_EQ(c0[i * mb + j],
                kernels::dot_seq(a.data() + i * k, b.data() + j * k, k));
      double seeded = 0.5;
      for (std::size_t kk = 0; kk < k; ++kk) {
        seeded += a[i * k + kk] * b[j * k + kk];
      }
      EXPECT_EQ(c1[i * mb + j], seeded);
    }
  }
}

TEST(Kernels, GramUpperMatchesDotsWithinTolerance) {
  Rng rng(42);
  const std::size_t m = 13, k = 97;
  std::vector<double> x(m * k);
  for (auto& v : x) v = rng.uniform(-3.0, 3.0);
  std::vector<double> g(m * m, 0.0);
  kernels::gram_upper(x.data(), m, k, g.data());
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (j < i) {
        EXPECT_EQ(g[i * m + j], 0.0);  // lower triangle untouched
      } else {
        const double want =
            kernels::dot_seq(x.data() + i * k, x.data() + j * k, k);
        EXPECT_NEAR(g[i * m + j], want, 1e-12 * (1.0 + std::abs(want)));
      }
    }
  }
}

// --- Gram-trick distances -------------------------------------------------

TEST(GramDistance, MatchesExactBuildWithinTolerance) {
  Rng rng(33);
  for (const auto& [m, d] : {std::pair<std::size_t, std::size_t>{3, 1},
                             {10, 7},
                             {23, 129},
                             {50, 1000}}) {
    const VectorList pts = random_points(rng, m, d);
    const DistanceMatrix exact(pts);
    const DistanceMatrix gram(GradientBatch::from(pts));
    ASSERT_EQ(gram.size(), m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const double want = exact.dist2(i, j);
        EXPECT_NEAR(gram.dist2(i, j), want, 1e-9 * (1.0 + std::abs(want)))
            << "m=" << m << " d=" << d << " i=" << i << " j=" << j;
        EXPECT_EQ(gram.dist2(i, j), gram.dist2(j, i));
      }
      EXPECT_EQ(gram.dist2(i, i), 0.0);
    }
  }
}

TEST(GramDistance, SurvivesLargeCommonOffset) {
  // Tightly clustered points far from the origin: the raw Gram identity
  // ni + nj - 2*Gij cancels catastrophically here (G entries ~ 1e16, true
  // spread ~ 1e-8); the centering step keeps full precision.
  Rng rng(48);
  const std::size_t m = 12, d = 64;
  VectorList pts;
  for (std::size_t i = 0; i < m; ++i) {
    Vector v(d);
    for (auto& x : v) x = 1.0e8 + rng.uniform(-1e-4, 1e-4);
    pts.push_back(v);
  }
  const DistanceMatrix exact(pts);
  const DistanceMatrix gram(GradientBatch::from(pts));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double want = exact.dist2(i, j);
      ASSERT_GT(want, 0.0);
      EXPECT_NEAR(gram.dist2(i, j), want, 1e-9 * want) << i << "," << j;
    }
  }
}

TEST(GramDistance, OutlierRowDoesNotPoisonClusterPrecision) {
  // Adversarial variant of the large-offset case: the honest rows cluster
  // at 1e8 with spread ~1e-4, but a Byzantine zero vector sits at row 0,
  // which both defeats the row-0 re-basing heuristic and inflates the
  // spread estimate.  The per-pair cancellation guard must still deliver
  // accurate honest-honest distances.
  Rng rng(49);
  const std::size_t m = 10, d = 64;
  VectorList pts;
  pts.push_back(zeros(d));  // Byzantine outlier at the reference slot
  for (std::size_t i = 1; i < m; ++i) {
    Vector v(d);
    for (auto& x : v) x = 1.0e8 + rng.uniform(-1e-4, 1e-4);
    pts.push_back(v);
  }
  const DistanceMatrix exact(pts);
  const DistanceMatrix gram(GradientBatch::from(pts));
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double want = exact.dist2(i, j);
      ASSERT_GT(want, 0.0);
      EXPECT_NEAR(gram.dist2(i, j), want, 1e-9 * want) << i << "," << j;
    }
    // Outlier-to-cluster distances are huge and cancellation-free.
    EXPECT_NEAR(gram.dist2(0, i), exact.dist2(0, i),
                1e-9 * exact.dist2(0, i));
  }
}

TEST(GramDistance, DuplicateRowsAreExactlyZero) {
  Rng rng(34);
  VectorList pts = random_points(rng, 12, 257);
  pts[9] = pts[2];   // cross-column-block duplicate
  pts[11] = pts[10]; // same-block duplicate
  const DistanceMatrix gram(GradientBatch::from(pts));
  EXPECT_EQ(gram.dist2(2, 9), 0.0);
  EXPECT_EQ(gram.dist2(10, 11), 0.0);
  EXPECT_EQ(gram.dist(2, 9), 0.0);
}

TEST(GramDistance, PoolBuildBitwiseMatchesSerial) {
  Rng rng(35);
  ThreadPool pool(4);
  const VectorList pts = random_points(rng, 19, 301);
  const GradientBatch batch = GradientBatch::from(pts);
  const DistanceMatrix serial(batch);
  const DistanceMatrix parallel(batch, &pool);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      EXPECT_EQ(serial.dist2(i, j), parallel.dist2(i, j));
    }
  }
}

TEST(GramDistance, RawRowSliceMatchesBatchCtor) {
  Rng rng(36);
  const VectorList pts = random_points(rng, 11, 45);
  const GradientBatch batch = GradientBatch::from(pts);
  const DistanceMatrix whole(batch);
  // Slice over the first 6 rows, as the trainers' honest-prefix metric
  // does.  The slice centers around its own row mean, so entries agree to
  // rounding, not bitwise.
  const DistanceMatrix slice(batch.row(0), 6, batch.dim());
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      const double want = whole.dist2(i, j);
      EXPECT_NEAR(slice.dist2(i, j), want, 1e-12 * (1.0 + want));
    }
  }
}

// --- batch-native reductions ---------------------------------------------

TEST(BatchReductions, CoordinatewiseMedianMatchesExactly) {
  Rng rng(37);
  for (std::size_t m : {3u, 4u, 9u, 16u}) {
    const VectorList pts = random_points(rng, m, 131);
    EXPECT_EQ(coordinatewise_median(GradientBatch::from(pts)),
              coordinatewise_median(pts));
  }
}

TEST(BatchReductions, TrimmedMeanMatchesExactly) {
  Rng rng(38);
  const VectorList pts = random_points(rng, 10, 200);
  for (std::size_t trim : {0u, 1u, 3u, 4u}) {
    EXPECT_EQ(coordinatewise_trimmed_mean(GradientBatch::from(pts), trim),
              coordinatewise_trimmed_mean(pts, trim));
  }
  EXPECT_THROW(coordinatewise_trimmed_mean(GradientBatch::from(pts), 5),
               std::invalid_argument);
}

// --- rules: batch path vs legacy path ------------------------------------

TEST(BatchRules, AllRulesMatchLegacyOnRandomInputs) {
  Rng rng(39);
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  const std::vector<std::string> names{
      "MEAN",      "CW-MEDIAN", "TRIM-MEAN", "MEDOID",  "KRUM",
      "MULTIKRUM-3", "MD-MEAN",  "MD-GEOM",   "GEOMED",  "BOX-MEAN",
      "BOX-GEOM"};
  for (int trial = 0; trial < 5; ++trial) {
    const VectorList received = random_points(rng, 10, 24);
    const GradientBatch batch = GradientBatch::from(received);
    for (const auto& name : names) {
      const auto rule = make_rule(name);
      const Vector legacy = rule->aggregate(received, ctx);
      AggregationWorkspace ws(batch);
      const Vector shared = rule->aggregate(batch, ws, ctx);
      EXPECT_EQ(legacy, shared) << "rule " << name << " trial " << trial;
    }
  }
}

TEST(BatchRules, WorkspaceOverWrongBatchThrows) {
  Rng rng(40);
  const GradientBatch a = GradientBatch::from(random_points(rng, 8, 3));
  const GradientBatch b = GradientBatch::from(random_points(rng, 8, 3));
  AggregationWorkspace ws(a);
  AggregationContext ctx;
  ctx.n = 8;
  ctx.t = 2;
  // GEOMED dispatches through the base adapter; KRUM through its own batch
  // override — both must enforce the workspace/batch precondition.
  EXPECT_THROW(make_rule("GEOMED")->aggregate(b, ws, ctx),
               std::invalid_argument);
  EXPECT_THROW(make_rule("KRUM")->aggregate(b, ws, ctx),
               std::invalid_argument);
}

TEST(BatchRules, RoundFunctionBatchStepMatchesLegacyStep) {
  Rng rng(41);
  AggregationContext ctx;
  ctx.n = 9;
  ctx.t = 2;
  const VectorList received = random_points(rng, 9, 12);
  const Vector current = random_points(rng, 1, 12).front();
  const GradientBatch batch = GradientBatch::from(received);
  for (const auto& name : {"KRUM", "MD-GEOM", "CW-MEDIAN", "MD-GEOM-STICKY"}) {
    const auto round = make_round_function(name);
    AggregationWorkspace ws(batch);
    EXPECT_EQ(round->step(batch, ws, current, ctx),
              round->step(received, current, ctx))
        << "round function " << name;
  }
}

// --- im2col Conv2D vs direct ---------------------------------------------

void fill_tensor(ml::Tensor& t, Rng& rng) {
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.uniform(-2.0, 2.0);
}

void compare_conv_modes(std::size_t in_c, std::size_t out_c, std::size_t k,
                        std::size_t pad, std::size_t n, std::size_t h,
                        std::size_t w, std::uint64_t seed) {
  ml::Conv2D fast(in_c, out_c, k, pad, ml::Conv2D::Mode::Im2col);
  ml::Conv2D direct(in_c, out_c, k, pad, ml::Conv2D::Mode::Direct);
  Rng init(seed);
  fast.initialize(init);
  std::vector<double> params(fast.parameter_count());
  fast.read_parameters(params.data());
  direct.write_parameters(params.data());

  Rng data(seed + 1);
  ml::Tensor x({n, in_c, h, w});
  fill_tensor(x, data);
  const ml::Tensor y_fast = fast.forward(x);
  const ml::Tensor y_direct = direct.forward(x);
  ASSERT_EQ(y_fast.shape(), y_direct.shape());
  // Forward is exact: the gemm accumulates each output in the same
  // (ic, kh, kw) order as the direct loops, bias first.
  for (std::size_t i = 0; i < y_fast.size(); ++i) {
    EXPECT_EQ(y_fast[i], y_direct[i]) << "output " << i;
  }

  ml::Tensor gy(y_fast.shape());
  fill_tensor(gy, data);
  const ml::Tensor gx_fast = fast.backward(gy);
  const ml::Tensor gx_direct = direct.backward(gy);
  std::vector<double> g_fast(fast.parameter_count());
  std::vector<double> g_direct(direct.parameter_count());
  fast.read_gradients(g_fast.data());
  direct.read_gradients(g_direct.data());
  // Backward contributions arrive in a different order (per-position scatter
  // vs per-entry gemm), so agreement is to rounding, not bitwise.
  for (std::size_t i = 0; i < gx_fast.size(); ++i) {
    EXPECT_NEAR(gx_fast[i], gx_direct[i],
                1e-12 * (1.0 + std::abs(gx_direct[i])));
  }
  for (std::size_t i = 0; i < g_fast.size(); ++i) {
    EXPECT_NEAR(g_fast[i], g_direct[i],
                1e-12 * (1.0 + std::abs(g_direct[i])));
  }
}

TEST(Im2colConv, MatchesDirectNoPadding) {
  compare_conv_modes(1, 1, 2, 0, 1, 3, 3, 51);
  compare_conv_modes(2, 3, 3, 0, 2, 5, 4, 52);
}

TEST(Im2colConv, MatchesDirectWithPadding) {
  compare_conv_modes(2, 4, 3, 1, 2, 5, 5, 53);
  compare_conv_modes(3, 2, 3, 2, 1, 4, 6, 54);
}

TEST(Im2colConv, DefaultModeIsIm2col) {
  ml::Conv2D conv(1, 1, 3, 1);
  EXPECT_EQ(conv.mode(), ml::Conv2D::Mode::Im2col);
}

// --- borrowed row-table views (inbox_views) --------------------------------

TEST(GradientBatchView, ReadsMatchOwnedAndMeanIsBitwise) {
  Rng rng(61);
  const VectorList pts = random_points(rng, 6, 9);
  const GradientBatch owned = GradientBatch::from(pts);
  std::vector<const double*> table;
  for (std::size_t i = 0; i < owned.rows(); ++i) table.push_back(owned.row(i));
  const GradientBatch borrowed =
      GradientBatch::view(table.data(), owned.rows(), owned.dim());

  EXPECT_FALSE(borrowed.contiguous());
  EXPECT_TRUE(owned.contiguous());
  for (std::size_t i = 0; i < owned.rows(); ++i) {
    // Borrowed rows alias the owned storage: identical pointers, not just
    // identical values.
    EXPECT_EQ(borrowed.row(i), owned.row(i)) << "row " << i;
  }
  const Vector owned_mean = mean(owned);
  const Vector view_mean = mean(borrowed);
  ASSERT_EQ(owned_mean.size(), view_mean.size());
  for (std::size_t c = 0; c < owned_mean.size(); ++c) {
    EXPECT_EQ(owned_mean[c], view_mean[c]) << "coordinate " << c;
  }
}

TEST(GradientBatchView, MutationAndFlatAccessThrow) {
  // A borrowed view must never silently hand out mutable or flat access:
  // the rows belong to the engine's round book, and flat data() would
  // read the wrong (empty) buffer.
  Rng rng(67);
  const VectorList pts = random_points(rng, 4, 5);
  const GradientBatch owned = GradientBatch::from(pts);
  std::vector<const double*> table;
  for (std::size_t i = 0; i < owned.rows(); ++i) table.push_back(owned.row(i));
  GradientBatch borrowed =
      GradientBatch::view(table.data(), owned.rows(), owned.dim());

  EXPECT_THROW(borrowed.row(0), std::logic_error);           // mutable row
  EXPECT_THROW(borrowed.set_row(0, pts[0]), std::logic_error);
  EXPECT_THROW(borrowed.data(), std::logic_error);           // flat access
  EXPECT_THROW(
      static_cast<const GradientBatch&>(borrowed).data(), std::logic_error);
  // Const, row-based reads stay fully functional on the same object.
  EXPECT_EQ(static_cast<const GradientBatch&>(borrowed).row(1), owned.row(1));
  EXPECT_EQ(borrowed.row_copy(2), pts[2]);
}

}  // namespace
}  // namespace bcl
