// Bitwise-equivalence suite for the PR 9 sub-round sharing layers
// (agreement/protocol.cpp): zero-copy inbox views and cross-node
// distance/step memoization are pure execution strategies — every
// combination of the two knobs must reproduce the naive copy-per-node
// path bit for bit, across round-function families, network models and
// fault schedules.  The sharing stats are asserted where the topology
// makes them deterministic: under sync every honest node sees the same
// inbox (one build per sub-round), while a lossy async net diverges the
// inboxes and the signature must force per-node fallback builds.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "agreement/protocol.hpp"
#include "agreement/round_function.hpp"
#include "faults/fault_plan.hpp"
#include "network/adversary.hpp"
#include "network/delay_model.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

VectorList random_inputs(Rng& rng, std::size_t n, std::size_t d,
                         double span = 5.0) {
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-span, span);
    pts.push_back(p);
  }
  return pts;
}

void expect_bitwise_outputs(const std::string& label, const AgreementResult& a,
                            const AgreementResult& b) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size()) << label;
  ASSERT_EQ(a.honest_ids, b.honest_ids) << label;
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    ASSERT_EQ(a.outputs[i].size(), b.outputs[i].size()) << label;
    for (std::size_t c = 0; c < a.outputs[i].size(); ++c) {
      // operator== on doubles: bit-identical (no tolerance) is the claim.
      ASSERT_EQ(a.outputs[i][c], b.outputs[i][c])
          << label << " node " << i << " coordinate " << c;
    }
  }
}

struct PathConfig {
  bool views = false;
  bool share = false;
};

AgreementResult run_path(const VectorList& inputs, std::size_t n,
                         std::size_t t, const std::string& rule,
                         const NetConfig& net, const FaultPlan* plan,
                         std::size_t subrounds, PathConfig path,
                         ThreadPool* pool = nullptr) {
  AgreementConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.round_function = make_round_function(rule);
  cfg.net = net;
  cfg.net.seed = 77;  // fixed: both paths must replay identical networks
  cfg.faults = plan;
  cfg.fault_round = 0;
  cfg.inbox_views = path.views;
  cfg.share_subrounds = path.share;
  cfg.pool = pool;
  SignFlipAdversary adversary({n - 2, n - 1});
  return run_fixed_rounds_agreement(inputs, adversary, subrounds, cfg);
}

// The naive path (owned copies, no sharing) is the reference every other
// strategy must match bitwise.
constexpr PathConfig kNaive{false, false};
constexpr PathConfig kViews{true, false};
constexpr PathConfig kShared{false, true};
constexpr PathConfig kViewsShared{true, true};

// Round functions spanning both memoization modes: RuleRound is
// current-independent (whole step output shared), MD-GEOM-STICKY reads
// `current` and may only share the distance build.
const char* kRules[] = {"KRUM", "CW-MEDIAN", "MD-GEOM-STICKY"};

TEST(SubroundSharing, AllStrategiesBitwiseEqualUnderSync) {
  const std::size_t n = 9, t = 2, d = 24, subrounds = 4;
  Rng rng(101);
  const VectorList inputs = random_inputs(rng, n, d);
  const NetConfig sync;
  for (const char* rule : kRules) {
    const auto naive =
        run_path(inputs, n, t, rule, sync, nullptr, subrounds, kNaive);
    for (const PathConfig path : {kViews, kShared, kViewsShared}) {
      const auto other =
          run_path(inputs, n, t, rule, sync, nullptr, subrounds, path);
      expect_bitwise_outputs(std::string(rule) + " views=" +
                                 std::to_string(path.views) + " share=" +
                                 std::to_string(path.share),
                             naive, other);
    }
  }
}

TEST(SubroundSharing, SyncStatsCollapseToOneBuildPerSubround) {
  // Under sync with everyone up, every honest node's inbox is identical:
  // exactly one build per sub-round, and every other receive() is a hit.
  const std::size_t n = 9, t = 2, d = 16, subrounds = 5;
  const std::size_t honest = n - 2;  // the adversary controls 2 ids
  Rng rng(103);
  const VectorList inputs = random_inputs(rng, n, d);
  for (const char* rule : kRules) {
    const auto result = run_path(inputs, n, t, rule, NetConfig{}, nullptr,
                                 subrounds, kViewsShared);
    EXPECT_EQ(result.sharing.gram_builds, subrounds) << rule;
    EXPECT_EQ(result.sharing.shared_hits, (honest - 1) * subrounds) << rule;
  }
}

TEST(SubroundSharing, SharingDisabledReportsZeroStats) {
  const std::size_t n = 7, t = 2, d = 8;
  Rng rng(105);
  const VectorList inputs = random_inputs(rng, n, d);
  const auto result =
      run_path(inputs, n, t, "KRUM", NetConfig{}, nullptr, 3, kViews);
  EXPECT_EQ(result.sharing.gram_builds, 0u);
  EXPECT_EQ(result.sharing.shared_hits, 0u);
}

TEST(SubroundSharing, LossyAsyncDivergesInboxesAndStaysBitwise) {
  // drop + timeout: nodes advance on different inboxes, so the signature
  // must mismatch (per-node fallback builds) and the shared path must
  // still equal the naive path bitwise — sharing never substitutes a
  // build computed over different bytes.
  const std::size_t n = 9, t = 2, d = 12, subrounds = 4;
  Rng rng(107);
  const VectorList inputs = random_inputs(rng, n, d);
  const NetConfig lossy =
      NetConfig::parse("async:delay=uniform,min=0.1,max=2,drop=0.25,timeout=8");
  for (const char* rule : kRules) {
    const auto naive =
        run_path(inputs, n, t, rule, lossy, nullptr, subrounds, kNaive);
    const auto shared =
        run_path(inputs, n, t, rule, lossy, nullptr, subrounds, kViewsShared);
    expect_bitwise_outputs(std::string(rule) + " lossy", naive, shared);
    // Divergent inboxes cannot collapse to one build per sub-round.
    EXPECT_GT(shared.sharing.gram_builds, subrounds) << rule;
  }
}

TEST(SubroundSharing, CrashFaultsKeepLiveNodesSharedAndBitwise) {
  // Crashed senders shrink every inbox identically under sync, so the
  // live nodes still share one build per sub-round — and the outputs
  // match the naive path bitwise with the same fault plan.
  const std::size_t n = 9, t = 2, d = 12, subrounds = 3;
  Rng rng(109);
  const VectorList inputs = random_inputs(rng, n, d);
  const FaultConfig faults = FaultConfig::parse("crash:frac=0.2,at=0");
  const FaultPlan plan(faults, n, 4, 55);
  for (const char* rule : kRules) {
    const auto naive =
        run_path(inputs, n, t, rule, NetConfig{}, &plan, subrounds, kNaive);
    const auto shared = run_path(inputs, n, t, rule, NetConfig{}, &plan,
                                 subrounds, kViewsShared);
    expect_bitwise_outputs(std::string(rule) + " faults", naive, shared);
    EXPECT_EQ(shared.sharing.gram_builds, subrounds) << rule;
  }
}

TEST(SubroundSharing, PooledRunMatchesSerialBitwise) {
  // advance_ready_nodes finalizes nodes in parallel on the engine pool;
  // the call_once sharing protocol must not perturb results under real
  // concurrency.
  const std::size_t n = 9, t = 2, d = 16, subrounds = 4;
  Rng rng(111);
  const VectorList inputs = random_inputs(rng, n, d);
  ThreadPool pool(4);
  for (const char* rule : kRules) {
    const auto serial = run_path(inputs, n, t, rule, NetConfig{}, nullptr,
                                 subrounds, kViewsShared);
    const auto pooled = run_path(inputs, n, t, rule, NetConfig{}, nullptr,
                                 subrounds, kViewsShared, &pool);
    expect_bitwise_outputs(std::string(rule) + " pooled", serial, pooled);
  }
}

}  // namespace
}  // namespace bcl
