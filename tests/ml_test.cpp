// Tests for src/ml: tensors, every layer's analytic gradient against
// central finite differences, loss, model parameter round-trips, synthetic
// datasets and the three partition schemes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "ml/activations.hpp"
#include "ml/architectures.hpp"
#include "ml/conv2d.hpp"
#include "ml/dataset.hpp"
#include "ml/dense.hpp"
#include "ml/loss.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "ml/partition.hpp"
#include "ml/pooling.hpp"
#include "ml/reshape.hpp"
#include "util/rng.hpp"

namespace bcl::ml {
namespace {

// --- Tensor ---

TEST(Tensor, ShapeAndVolume) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_THROW(t.dim(3), std::out_of_range);
}

TEST(Tensor, DataMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Tensor, At2RowMajor) {
  Tensor t({2, 3}, {0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(t.at2(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(t.at2(1, 0), 3.0);
}

TEST(Tensor, At4Indexing) {
  Tensor t({1, 2, 2, 2});
  t.at4(0, 1, 1, 0) = 9.0;
  EXPECT_DOUBLE_EQ(t[6], 9.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 2}, {1.0, 2.0, 3.0, 4.0});
  Tensor r = t.reshaped({4});
  EXPECT_DOUBLE_EQ(r[3], 4.0);
  EXPECT_THROW(t.reshaped({5}), std::invalid_argument);
}

// --- finite-difference gradient checking helper ---

// Checks dLoss/dparams and dLoss/dinput of `model` on a random batch via
// central differences.
void check_gradients(Model& model, std::size_t input_dim, std::size_t classes,
                     std::size_t batch, std::uint64_t seed,
                     double tol = 1e-6) {
  Rng rng(seed);
  model.initialize(rng);
  Tensor x({batch, input_dim});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform(-1.0, 1.0);
  std::vector<std::uint8_t> y(batch);
  for (auto& label : y) {
    label = static_cast<std::uint8_t>(rng.uniform_u64(classes));
  }

  model.compute_loss_and_gradient(x, y);
  const Vector analytic = model.gradients();
  Vector theta = model.parameters();

  // Sample a subset of parameters to keep the test fast but representative.
  Rng pick(seed + 1);
  const std::size_t samples = std::min<std::size_t>(theta.size(), 40);
  const double h = 1e-5;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t idx = pick.uniform_u64(theta.size());
    Vector theta_plus = theta;
    Vector theta_minus = theta;
    theta_plus[idx] += h;
    theta_minus[idx] -= h;
    model.set_parameters(theta_plus);
    const double loss_plus = model.compute_loss(x, y);
    model.set_parameters(theta_minus);
    const double loss_minus = model.compute_loss(x, y);
    const double numeric = (loss_plus - loss_minus) / (2.0 * h);
    EXPECT_NEAR(analytic[idx], numeric, tol * (1.0 + std::abs(numeric)))
        << "param index " << idx;
  }
  model.set_parameters(theta);
}

// --- Dense ---

TEST(Dense, ForwardMatchesManualMatMul) {
  Dense layer(2, 2);
  // W = [[1, 2], [3, 4]], b = [0.5, -0.5].
  layer.write_parameters(
      std::vector<double>{1.0, 2.0, 3.0, 4.0, 0.5, -0.5}.data());
  Tensor x({1, 2}, {1.0, 1.0});
  const Tensor y = layer.forward(x);
  EXPECT_DOUBLE_EQ(y.at2(0, 0), 4.5);   // 1*1 + 1*3 + 0.5
  EXPECT_DOUBLE_EQ(y.at2(0, 1), 5.5);   // 1*2 + 1*4 - 0.5
}

TEST(Dense, ParameterRoundTrip) {
  Dense layer(3, 4);
  Rng rng(1);
  layer.initialize(rng);
  std::vector<double> out(layer.parameter_count());
  layer.read_parameters(out.data());
  Dense layer2(3, 4);
  layer2.write_parameters(out.data());
  std::vector<double> out2(layer2.parameter_count());
  layer2.read_parameters(out2.data());
  EXPECT_EQ(out, out2);
}

TEST(Dense, GradientCheckMlp) {
  Model model = make_mlp(6, 5, 4, 3);
  check_gradients(model, 6, 3, 4, 11);
}

TEST(Dense, RejectsWrongInputShape) {
  Dense layer(3, 2);
  Tensor x({2, 4});
  EXPECT_THROW(layer.forward(x), std::invalid_argument);
}

TEST(Dense, ZeroSizedThrows) {
  EXPECT_THROW(Dense(0, 2), std::invalid_argument);
}

// --- activations ---

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x({1, 4}, {-1.0, 0.0, 2.0, -3.0});
  const Tensor y = relu.forward(x);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(ReLU, BackwardMasksByInputSign) {
  ReLU relu;
  Tensor x({1, 3}, {-1.0, 1.0, 2.0});
  relu.forward(x);
  Tensor g({1, 3}, {5.0, 5.0, 5.0});
  const Tensor gx = relu.backward(g);
  EXPECT_DOUBLE_EQ(gx[0], 0.0);
  EXPECT_DOUBLE_EQ(gx[1], 5.0);
}

TEST(Tanh, GradientCheckThroughModel) {
  Model model;
  model.add(std::make_unique<Dense>(4, 5))
      .add(std::make_unique<Tanh>())
      .add(std::make_unique<Dense>(5, 3));
  check_gradients(model, 4, 3, 3, 12);
}

// --- conv / pool / reshape ---

TEST(Conv2D, KnownKernelOutput) {
  Conv2D conv(1, 1, 2, 0);  // identity-ish 2x2 kernel
  // kernel [[1, 0], [0, 1]], bias 1.
  conv.write_parameters(std::vector<double>{1.0, 0.0, 0.0, 1.0, 1.0}.data());
  Tensor x({1, 1, 2, 2}, {1.0, 2.0, 3.0, 4.0});
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 + 4.0 + 1.0);  // x[0,0] + x[1,1] + bias
}

TEST(Conv2D, PaddingPreservesSpatialSize) {
  Conv2D conv(1, 2, 3, 1);
  Tensor x({2, 1, 5, 5});
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 2, 5, 5}));
}

TEST(Conv2D, KernelLargerThanInputThrows) {
  Conv2D conv(1, 1, 7, 0);
  Tensor x({1, 1, 3, 3});
  EXPECT_THROW(conv.forward(x), std::invalid_argument);
}

TEST(Conv2D, GradientCheckSmallConvNet) {
  Model model;
  model.add(std::make_unique<Reshape>(std::vector<std::size_t>{1, 4, 4}))
      .add(std::make_unique<Conv2D>(1, 2, 3, 1))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(8, 3));
  check_gradients(model, 16, 3, 3, 13, 1e-5);
}

TEST(MaxPool2D, SelectsWindowMaxima) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2}, {1.0, 5.0, 3.0, 2.0});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2}, {1.0, 5.0, 3.0, 2.0});
  pool.forward(x);
  Tensor g({1, 1, 1, 1}, {7.0});
  const Tensor gx = pool.backward(g);
  EXPECT_DOUBLE_EQ(gx[1], 7.0);
  EXPECT_DOUBLE_EQ(gx[0], 0.0);
}

TEST(MaxPool2D, IndivisibleDimsThrow) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW(pool.forward(x), std::invalid_argument);
}

TEST(Reshape, RoundTripThroughFlatten) {
  Reshape reshape(std::vector<std::size_t>{2, 3, 2});
  Flatten flatten;
  Tensor x({4, 12});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const Tensor shaped = reshape.forward(x);
  EXPECT_EQ(shaped.shape(), (std::vector<std::size_t>{4, 2, 3, 2}));
  const Tensor flat = flatten.forward(shaped);
  EXPECT_EQ(flat.shape(), (std::vector<std::size_t>{4, 12}));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(flat[i], x[i]);
  }
}

// --- loss ---

TEST(Loss, SoftmaxRowsSumToOne) {
  Tensor logits({2, 3}, {1.0, 2.0, 3.0, -1.0, 0.0, 1.0});
  const Tensor p = softmax(logits);
  for (std::size_t n = 0; n < 2; ++n) {
    double sum = 0.0;
    for (std::size_t k = 0; k < 3; ++k) sum += p.at2(n, k);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Loss, UniformLogitsGiveLogK) {
  Tensor logits({1, 4}, {0.0, 0.0, 0.0, 0.0});
  const auto r = softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-12);
}

TEST(Loss, NumericallyStableWithHugeLogits) {
  Tensor logits({1, 3}, {1000.0, 0.0, -1000.0});
  const auto r = softmax_cross_entropy(logits, {0});
  EXPECT_NEAR(r.loss, 0.0, 1e-9);
  EXPECT_TRUE(std::isfinite(r.loss));
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Tensor logits({2, 3}, {0.5, -0.5, 1.0, 2.0, 0.0, -1.0});
  const auto r = softmax_cross_entropy(logits, {1, 0});
  for (std::size_t n = 0; n < 2; ++n) {
    double sum = 0.0;
    for (std::size_t k = 0; k < 3; ++k) sum += r.grad_logits.at2(n, k);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(Loss, LabelOutOfRangeThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Loss, ArgmaxRows) {
  Tensor logits({2, 3}, {0.1, 0.9, 0.0, 5.0, -1.0, 2.0});
  const auto pred = argmax_rows(logits);
  EXPECT_EQ(pred[0], 1);
  EXPECT_EQ(pred[1], 0);
}

// --- model ---

TEST(Model, ParameterVectorRoundTrip) {
  Model model = make_mlp(5, 4, 3, 2);
  Rng rng(14);
  model.initialize(rng);
  const Vector theta = model.parameters();
  EXPECT_EQ(theta.size(), model.parameter_count());
  Model model2 = make_mlp(5, 4, 3, 2);
  model2.set_parameters(theta);
  EXPECT_EQ(model2.parameters(), theta);
}

TEST(Model, ParameterCountMlp) {
  const Model model = make_mlp(10, 8, 6, 4);
  EXPECT_EQ(model.parameter_count(),
            10u * 8 + 8 + 8 * 6 + 6 + 6 * 4 + 4);
}

TEST(Model, SetParametersSizeMismatchThrows) {
  Model model = make_mlp(3, 2, 2, 2);
  EXPECT_THROW(model.set_parameters(Vector{1.0}), std::invalid_argument);
}

TEST(Model, TrainingReducesLossOnToyProblem) {
  Model model = make_linear(4, 2);
  Rng rng(15);
  model.initialize(rng);
  // Linearly separable toy data.
  Tensor x({8, 4});
  std::vector<std::uint8_t> y(8);
  for (std::size_t i = 0; i < 8; ++i) {
    y[i] = static_cast<std::uint8_t>(i % 2);
    for (std::size_t k = 0; k < 4; ++k) {
      x.at2(i, k) = (y[i] == 0 ? 1.0 : -1.0) + 0.1 * rng.gaussian();
    }
  }
  const double initial_loss = model.compute_loss(x, y);
  Vector theta = model.parameters();
  for (int step = 0; step < 200; ++step) {
    model.set_parameters(theta);
    model.compute_loss_and_gradient(x, y);
    sgd_step(theta, model.gradients(), 0.5);
  }
  model.set_parameters(theta);
  EXPECT_LT(model.compute_loss(x, y), initial_loss * 0.2);
  EXPECT_EQ(model.accuracy(x, y), 1.0);
}

TEST(Model, CifarNetShapesFlowThrough) {
  Model model = make_cifarnet(3, 16, 16, 10, 4, 8, 16);
  Rng rng(16);
  model.initialize(rng);
  Tensor x({2, 3 * 16 * 16});
  const Tensor logits = model.forward(x);
  EXPECT_EQ(logits.shape(), (std::vector<std::size_t>{2, 10}));
  EXPECT_GT(model.parameter_count(), 1000u);
}

TEST(Model, CifarNetGradientCheck) {
  Model model = make_cifarnet(1, 8, 8, 3, 2, 3, 6);
  check_gradients(model, 64, 3, 2, 17, 1e-5);
}

// --- optimizer ---

TEST(Optimizer, SgdStepMovesAgainstGradient) {
  Vector theta{1.0, 2.0};
  sgd_step(theta, {0.5, -1.0}, 0.1);
  EXPECT_DOUBLE_EQ(theta[0], 0.95);
  EXPECT_DOUBLE_EQ(theta[1], 2.1);
}

TEST(Optimizer, ScheduleDecaysOverRounds) {
  const auto schedule = LearningRateSchedule::paper_default(100);
  EXPECT_DOUBLE_EQ(schedule.rate(0), 0.01);
  EXPECT_LT(schedule.rate(100), schedule.rate(0));
  EXPECT_NEAR(schedule.rate(100), 0.01 / (1.0 + 0.01 / 100.0 * 100.0), 1e-12);
}

TEST(Optimizer, ZeroDecayIsConstant) {
  const LearningRateSchedule schedule(0.05, 0.0);
  EXPECT_DOUBLE_EQ(schedule.rate(0), schedule.rate(1000));
}

// --- dataset ---

TEST(Dataset, DeterministicInSeed) {
  const auto a = make_synthetic_dataset(SyntheticSpec::mnist_small(7));
  const auto b = make_synthetic_dataset(SyntheticSpec::mnist_small(7));
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train.images[0], b.train.images[0]);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Dataset, DifferentSeedsDiffer) {
  const auto a = make_synthetic_dataset(SyntheticSpec::mnist_small(7));
  const auto b = make_synthetic_dataset(SyntheticSpec::mnist_small(8));
  EXPECT_NE(a.train.images[0], b.train.images[0]);
}

TEST(Dataset, ShapesAndRanges) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(9));
  EXPECT_EQ(data.train.feature_dim(), 14u * 14u);
  EXPECT_EQ(data.train.size(), 10u * 120u);
  EXPECT_EQ(data.test.size(), 10u * 30u);
  for (double v : data.train.images[0]) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Dataset, AllClassesPresentAndBalanced) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(10));
  std::vector<std::size_t> counts(10, 0);
  for (auto label : data.train.labels) ++counts[label];
  for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(counts[c], 120u);
}

TEST(Dataset, BatchAssembly) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(11));
  const Tensor batch = data.train.batch({0, 5, 9});
  EXPECT_EQ(batch.shape(),
            (std::vector<std::size_t>{3, data.train.feature_dim()}));
  const auto labels = data.train.batch_labels({0, 5, 9});
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[1], data.train.labels[5]);
}

TEST(Dataset, LearnableByLinearModel) {
  // The MNIST-like task must be learnable, otherwise the collaborative
  // experiments are meaningless.  A linear softmax model should exceed 80%
  // within a few full-batch steps.
  SyntheticSpec spec = SyntheticSpec::mnist_small(12);
  spec.train_per_class = 40;
  spec.test_per_class = 20;
  const auto data = make_synthetic_dataset(spec);
  Model model = make_linear(data.train.feature_dim(), 10);
  Rng rng(18);
  model.initialize(rng);
  std::vector<std::size_t> all(data.train.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const Tensor x = data.train.batch(all);
  const auto y = data.train.batch_labels(all);
  Vector theta = model.parameters();
  for (int step = 0; step < 60; ++step) {
    model.set_parameters(theta);
    model.compute_loss_and_gradient(x, y);
    sgd_step(theta, model.gradients(), 0.5);
  }
  model.set_parameters(theta);
  std::vector<std::size_t> test_all(data.test.size());
  for (std::size_t i = 0; i < test_all.size(); ++i) test_all[i] = i;
  const double acc =
      model.accuracy(data.test.batch(test_all), data.test.batch_labels(test_all));
  EXPECT_GT(acc, 0.8);
}

TEST(Dataset, CifarLikeIsHarderThanMnistLike) {
  // The CIFAR-like profile blends prototypes and adds noise; its achievable
  // linear accuracy must be lower, mirroring the paper's MNIST vs CIFAR10
  // gap.
  auto train_linear = [](const TrainTestSplit& data) {
    Model model = make_linear(data.train.feature_dim(), 10);
    Rng rng(19);
    model.initialize(rng);
    std::vector<std::size_t> all(data.train.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    const Tensor x = data.train.batch(all);
    const auto y = data.train.batch_labels(all);
    Vector theta = model.parameters();
    for (int step = 0; step < 40; ++step) {
      model.set_parameters(theta);
      model.compute_loss_and_gradient(x, y);
      sgd_step(theta, model.gradients(), 0.5);
    }
    model.set_parameters(theta);
    std::vector<std::size_t> test_all(data.test.size());
    for (std::size_t i = 0; i < test_all.size(); ++i) test_all[i] = i;
    return model.accuracy(data.test.batch(test_all),
                          data.test.batch_labels(test_all));
  };
  SyntheticSpec mnist = SyntheticSpec::mnist_small(20);
  mnist.train_per_class = 30;
  SyntheticSpec cifar = SyntheticSpec::cifar_small(20);
  cifar.train_per_class = 30;
  const double easy = train_linear(make_synthetic_dataset(mnist));
  const double hard = train_linear(make_synthetic_dataset(cifar));
  EXPECT_GT(easy, hard);
}

// --- partition ---

class PartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionTest, EveryExampleAssignedExactlyOnce) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(21));
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (auto scheme : {Heterogeneity::Uniform, Heterogeneity::Mild,
                      Heterogeneity::Extreme}) {
    const auto shards = partition_dataset(data.train, 10, scheme, rng);
    std::set<std::size_t> seen;
    std::size_t total = 0;
    for (const auto& shard : shards) {
      total += shard.size();
      seen.insert(shard.begin(), shard.end());
    }
    EXPECT_EQ(total, data.train.size());
    EXPECT_EQ(seen.size(), data.train.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionTest, ::testing::Range(0, 4));

TEST(Partition, UniformGivesAllClassesToEveryClient) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(22));
  Rng rng(1);
  const auto shards =
      partition_dataset(data.train, 10, Heterogeneity::Uniform, rng);
  for (const auto& shard : shards) {
    EXPECT_EQ(distinct_labels(data.train, shard), 10u);
  }
}

TEST(Partition, MildSharesAreFivePercentToFifteenPercent) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(23));
  Rng rng(2);
  const auto shards =
      partition_dataset(data.train, 10, Heterogeneity::Mild, rng);
  // Count per-client share of class 0: must include one ~5% and one ~15%.
  const std::size_t class_total = 120;
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t c = 0; c < 10; ++c) {
    for (std::size_t i : shards[c]) {
      if (data.train.labels[i] == 0) ++counts[c];
    }
  }
  const std::size_t lo = *std::min_element(counts.begin(), counts.end());
  const std::size_t hi = *std::max_element(counts.begin(), counts.end());
  EXPECT_NEAR(static_cast<double>(lo) / class_total, 0.05, 0.02);
  EXPECT_NEAR(static_cast<double>(hi) / class_total, 0.15, 0.02);
}

TEST(Partition, MildKeepsTotalsRoughlyBalanced) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(24));
  Rng rng(3);
  const auto shards =
      partition_dataset(data.train, 10, Heterogeneity::Mild, rng);
  const double expected = static_cast<double>(data.train.size()) / 10.0;
  for (const auto& shard : shards) {
    EXPECT_NEAR(static_cast<double>(shard.size()), expected, expected * 0.2);
  }
}

TEST(Partition, ExtremeGivesAtMostTwoClasses) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(25));
  Rng rng(4);
  const auto shards =
      partition_dataset(data.train, 10, Heterogeneity::Extreme, rng);
  for (const auto& shard : shards) {
    EXPECT_LE(distinct_labels(data.train, shard), 3u);  // 2 shards can
    // straddle at most 3 labels when a shard boundary splits a class.
    EXPECT_GE(shard.size(), 1u);
  }
}

TEST(Partition, ParseAndNames) {
  EXPECT_EQ(parse_heterogeneity("mild"), Heterogeneity::Mild);
  EXPECT_STREQ(heterogeneity_name(Heterogeneity::Extreme), "extreme");
  EXPECT_THROW(parse_heterogeneity("nope"), std::invalid_argument);
}

TEST(Partition, ZeroClientsThrows) {
  const auto data = make_synthetic_dataset(SyntheticSpec::mnist_small(26));
  Rng rng(5);
  EXPECT_THROW(partition_dataset(data.train, 0, Heterogeneity::Uniform, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace bcl::ml
