// Tests for src/learning: client gradient sampling, config validation,
// the sub-round schedule, and short centralized / decentralized training
// runs (fast, reduced-scale configurations).

#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/registry.hpp"
#include "attacks/registry.hpp"
#include "learning/centralized.hpp"
#include "learning/client.hpp"
#include "learning/config.hpp"
#include "learning/decentralized.hpp"
#include "ml/architectures.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

ml::SyntheticSpec tiny_spec(std::uint64_t seed) {
  ml::SyntheticSpec spec = ml::SyntheticSpec::mnist_small(seed);
  spec.height = 8;
  spec.width = 8;
  spec.train_per_class = 40;
  spec.test_per_class = 15;
  return spec;
}

ModelFactory tiny_mlp_factory(std::size_t input_dim) {
  return [input_dim] { return ml::make_mlp(input_dim, 16, 8, 10); };
}

TrainingConfig base_config(const std::string& rule,
                           const std::string& attack) {
  TrainingConfig cfg;
  cfg.num_clients = 10;
  cfg.num_byzantine = 1;
  cfg.rounds = 8;
  cfg.batch_size = 16;
  cfg.rule = make_rule(rule);
  cfg.attack = make_attack(attack);
  // Larger constant rate than the paper's 0.01: the reduced-scale test
  // task needs to learn within a handful of rounds.
  cfg.schedule = ml::LearningRateSchedule(0.5, 0.0);
  cfg.heterogeneity = ml::Heterogeneity::Mild;
  cfg.seed = 5;
  return cfg;
}

// --- Client ---

TEST(Client, GradientHasModelDimension) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(1));
  const auto factory = tiny_mlp_factory(data.train.feature_dim());
  ml::Model probe = factory();
  std::vector<std::size_t> shard{0, 1, 2, 3, 4};
  Client client(0, &data.train, shard, factory, 4, Rng(1));
  Rng init(2);
  probe.initialize(init);
  const auto estimate = client.stochastic_gradient(probe.parameters());
  EXPECT_EQ(estimate.gradient.size(), probe.parameter_count());
  EXPECT_TRUE(std::isfinite(estimate.loss));
  EXPECT_GT(norm2(estimate.gradient), 0.0);
}

TEST(Client, DeterministicGivenSameRng) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(2));
  const auto factory = tiny_mlp_factory(data.train.feature_dim());
  ml::Model probe = factory();
  Rng init(3);
  probe.initialize(init);
  std::vector<std::size_t> shard{0, 1, 2, 3, 4, 5};
  Client a(0, &data.train, shard, factory, 4, Rng(7));
  Client b(0, &data.train, shard, factory, 4, Rng(7));
  EXPECT_EQ(a.stochastic_gradient(probe.parameters()).gradient,
            b.stochastic_gradient(probe.parameters()).gradient);
}

TEST(Client, EmptyShardThrows) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(3));
  const auto factory = tiny_mlp_factory(data.train.feature_dim());
  EXPECT_THROW(Client(0, &data.train, {}, factory, 4, Rng(1)),
               std::invalid_argument);
}

TEST(Client, EvaluateReturnsFraction) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(4));
  const auto factory = tiny_mlp_factory(data.train.feature_dim());
  ml::Model probe = factory();
  Rng init(4);
  probe.initialize(init);
  std::vector<std::size_t> shard{0, 1, 2};
  Client client(0, &data.train, shard, factory, 4, Rng(1));
  const double acc = client.evaluate(probe.parameters(), data.test, 50);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

// --- config validation ---

TEST(Config, ValidatesTolerance) {
  TrainingConfig cfg = base_config("MEAN", "none");
  cfg.num_byzantine = 4;  // 3t >= n
  EXPECT_THROW(validate_config(cfg), std::invalid_argument);
}

TEST(Config, RequiresRuleAndAttack) {
  TrainingConfig cfg = base_config("MEAN", "none");
  cfg.rule = nullptr;
  EXPECT_THROW(validate_config(cfg), std::invalid_argument);
  cfg = base_config("MEAN", "none");
  cfg.attack = nullptr;
  EXPECT_THROW(validate_config(cfg), std::invalid_argument);
}

TEST(Config, ResolvedToleranceIsMaxOfBoth) {
  TrainingConfig cfg = base_config("MEAN", "none");
  cfg.num_byzantine = 1;
  cfg.tolerance = 2;
  EXPECT_EQ(cfg.resolved_t(), 2u);
  cfg.tolerance = 0;
  EXPECT_EQ(cfg.resolved_t(), 1u);
}

TEST(Config, BestAccuracyScansHistory) {
  TrainingResult result;
  result.history.push_back({0, 0.3, 0.3, 0.3, 1.0, 0.01, 0.0});
  result.history.push_back({1, 0.7, 0.7, 0.7, 0.5, 0.01, 0.0});
  result.history.push_back({2, 0.5, 0.5, 0.5, 0.6, 0.01, 0.0});
  EXPECT_DOUBLE_EQ(result.best_accuracy(), 0.7);
}

// --- sub-round schedule ---

TEST(Subrounds, LogarithmicSchedule) {
  EXPECT_EQ(agreement_subrounds(0), 1u);   // ceil(log2(2)) = 1
  EXPECT_EQ(agreement_subrounds(1), 2u);   // ceil(log2(3)) = 2
  EXPECT_EQ(agreement_subrounds(2), 2u);   // ceil(log2(4)) = 2
  EXPECT_EQ(agreement_subrounds(6), 3u);   // ceil(log2(8)) = 3
  EXPECT_EQ(agreement_subrounds(14), 4u);  // ceil(log2(16)) = 4
  EXPECT_EQ(agreement_subrounds(1000), 10u);
}

// --- centralized training ---

TEST(Centralized, LearnsWithoutFaults) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(5));
  TrainingConfig cfg = base_config("MEAN", "none");
  cfg.num_byzantine = 0;
  cfg.rounds = 60;
  CentralizedTrainer trainer(cfg, tiny_mlp_factory(data.train.feature_dim()),
                             &data.train, &data.test);
  const auto result = trainer.run();
  ASSERT_EQ(result.history.size(), 60u);
  EXPECT_GT(result.best_accuracy(), 0.5);
  // Accuracy at the end beats the start (learning happened).
  EXPECT_GT(result.history.back().accuracy,
            result.history.front().accuracy);
}

TEST(Centralized, DeterministicGivenSeed) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(6));
  auto run_once = [&] {
    TrainingConfig cfg = base_config("BOX-GEOM", "sign-flip");
    cfg.rounds = 3;
    CentralizedTrainer trainer(cfg,
                               tiny_mlp_factory(data.train.feature_dim()),
                               &data.train, &data.test);
    return trainer.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.history[r].accuracy, b.history[r].accuracy);
    EXPECT_DOUBLE_EQ(a.history[r].mean_honest_loss,
                     b.history[r].mean_honest_loss);
  }
}

TEST(Centralized, ParallelPoolMatchesSerial) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(7));
  ThreadPool pool(3);
  auto run_with = [&](ThreadPool* p) {
    TrainingConfig cfg = base_config("BOX-MEAN", "sign-flip");
    cfg.rounds = 3;
    cfg.pool = p;
    CentralizedTrainer trainer(cfg,
                               tiny_mlp_factory(data.train.feature_dim()),
                               &data.train, &data.test);
    return trainer.run();
  };
  const auto serial = run_with(nullptr);
  const auto parallel = run_with(&pool);
  for (std::size_t r = 0; r < serial.history.size(); ++r) {
    EXPECT_DOUBLE_EQ(serial.history[r].accuracy,
                     parallel.history[r].accuracy);
  }
}

TEST(Centralized, RobustRuleSurvivesSignFlip) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(8));
  TrainingConfig cfg = base_config("BOX-GEOM", "sign-flip");
  cfg.rounds = 60;
  CentralizedTrainer trainer(cfg, tiny_mlp_factory(data.train.feature_dim()),
                             &data.train, &data.test);
  const auto result = trainer.run();
  EXPECT_GT(result.best_accuracy(), 0.5);
}

TEST(Centralized, CrashFaultsTolerated) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(9));
  TrainingConfig cfg = base_config("MD-GEOM", "crash");
  cfg.rounds = 50;
  CentralizedTrainer trainer(cfg, tiny_mlp_factory(data.train.feature_dim()),
                             &data.train, &data.test);
  const auto result = trainer.run();
  EXPECT_GT(result.best_accuracy(), 0.5);
}

// --- decentralized training ---

TEST(Decentralized, LearnsWithoutFaults) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(10));
  TrainingConfig cfg = base_config("BOX-GEOM", "none");
  cfg.num_byzantine = 0;
  cfg.tolerance = 1;
  cfg.rounds = 40;
  DecentralizedTrainer trainer(cfg,
                               tiny_mlp_factory(data.train.feature_dim()),
                               &data.train, &data.test);
  const auto result = trainer.run();
  ASSERT_EQ(result.history.size(), 40u);
  EXPECT_GT(result.best_accuracy(), 0.4);
}

TEST(Decentralized, ReportsAccuracySpreadAndDisagreement) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(11));
  TrainingConfig cfg = base_config("BOX-GEOM", "sign-flip");
  cfg.rounds = 4;
  DecentralizedTrainer trainer(cfg,
                               tiny_mlp_factory(data.train.feature_dim()),
                               &data.train, &data.test);
  const auto result = trainer.run();
  for (const auto& metrics : result.history) {
    EXPECT_LE(metrics.accuracy_min, metrics.accuracy + 1e-12);
    EXPECT_GE(metrics.accuracy_max, metrics.accuracy - 1e-12);
    EXPECT_GE(metrics.disagreement, 0.0);
    EXPECT_TRUE(std::isfinite(metrics.disagreement));
  }
}

TEST(Decentralized, HonestParametersStayClose) {
  // The agreement subroutine keeps honest gradients (and hence parameters
  // after identical init) close across clients.
  const auto data = ml::make_synthetic_dataset(tiny_spec(12));
  TrainingConfig cfg = base_config("BOX-GEOM", "sign-flip");
  cfg.rounds = 6;
  DecentralizedTrainer trainer(cfg,
                               tiny_mlp_factory(data.train.feature_dim()),
                               &data.train, &data.test);
  trainer.run();
  const auto& params = trainer.honest_parameters();
  ASSERT_EQ(params.size(), 9u);
  // Parameter disagreement bounded by the sum of per-round gradient
  // disagreements times the learning rate; just assert it is small
  // relative to the parameter scale.
  EXPECT_LT(diameter(params), 0.5 * (1.0 + norm2(params[0])));
}

TEST(Decentralized, DeterministicGivenSeed) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(13));
  auto run_once = [&] {
    TrainingConfig cfg = base_config("MD-GEOM", "sign-flip");
    cfg.rounds = 3;
    DecentralizedTrainer trainer(cfg,
                                 tiny_mlp_factory(data.train.feature_dim()),
                                 &data.train, &data.test);
    return trainer.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.history[r].accuracy, b.history[r].accuracy);
  }
}

}  // namespace
}  // namespace bcl
