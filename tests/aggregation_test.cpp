// Tests for src/aggregation: every aggregation rule against hand-computed
// cases, shared invariants (permutation/translation equivariance, trusted-
// box validity), and the counterexample constructions behind the paper's
// Theorems 4.1 / 4.3.

#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/hyperbox_rules.hpp"
#include "aggregation/krum.hpp"
#include "aggregation/minimum_diameter_rules.hpp"
#include "aggregation/registry.hpp"
#include "aggregation/simple_rules.hpp"
#include "geometry/min_diameter.hpp"
#include "geometry/subsets.hpp"
#include "geometry/weiszfeld.hpp"
#include "linalg/stats.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

AggregationContext ctx_of(std::size_t n, std::size_t t) {
  AggregationContext ctx;
  ctx.n = n;
  ctx.t = t;
  return ctx;
}

VectorList random_points(Rng& rng, std::size_t n, std::size_t d,
                         double span = 4.0) {
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-span, span);
    pts.push_back(p);
  }
  return pts;
}

// --- validation shared by all rules ---

TEST(RuleValidation, RejectsBadContexts) {
  MeanRule rule;
  const VectorList one{{1.0}};
  EXPECT_THROW(rule.aggregate(one, ctx_of(0, 0)), std::invalid_argument);
  EXPECT_THROW(rule.aggregate(one, ctx_of(2, 2)), std::invalid_argument);
}

TEST(RuleValidation, RejectsTooFewVectors) {
  MeanRule rule;
  // n = 4, t = 1 -> need at least 3.
  EXPECT_THROW(rule.aggregate({{1.0}, {2.0}}, ctx_of(4, 1)),
               std::invalid_argument);
}

TEST(RuleValidation, RejectsTooManyVectors) {
  MeanRule rule;
  EXPECT_THROW(rule.aggregate({{1.0}, {2.0}, {3.0}}, ctx_of(2, 0)),
               std::invalid_argument);
}

TEST(RuleValidation, RejectsMixedDimensions) {
  MeanRule rule;
  EXPECT_THROW(rule.aggregate({{1.0}, {2.0, 3.0}}, ctx_of(2, 0)),
               std::invalid_argument);
}

// --- simple rules ---

TEST(MeanRule, MatchesArithmeticMean) {
  MeanRule rule;
  const Vector out =
      rule.aggregate({{0.0, 0.0}, {2.0, 4.0}, {4.0, 2.0}}, ctx_of(3, 0));
  EXPECT_EQ(out, (Vector{2.0, 2.0}));
}

TEST(GeometricMedianRule, MatchesWeiszfeld) {
  GeometricMedianRule rule;
  const VectorList pts{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  const Vector out = rule.aggregate(pts, ctx_of(4, 0));
  EXPECT_TRUE(approx_equal(out, {1.0, 1.0}, 1e-7));
}

TEST(MedoidRule, ReturnsAnInputVector) {
  MedoidRule rule;
  const VectorList pts{{0.0}, {1.0}, {2.0}, {9.0}};
  const Vector out = rule.aggregate(pts, ctx_of(4, 1));
  bool is_input = false;
  for (const auto& p : pts) {
    if (p == out) is_input = true;
  }
  EXPECT_TRUE(is_input);
}

TEST(CoordinatewiseMedianRule, IgnoresPerCoordinateOutliers) {
  CoordinatewiseMedianRule rule;
  const VectorList pts{{0.0, -100.0}, {1.0, 0.0}, {100.0, 1.0}};
  EXPECT_EQ(rule.aggregate(pts, ctx_of(3, 1)), (Vector{1.0, 0.0}));
}

TEST(TrimmedMeanRule, TrimsTPerSide) {
  TrimmedMeanRule rule;
  const VectorList pts{{-1000.0}, {1.0}, {2.0}, {3.0}, {1000.0}};
  EXPECT_EQ(rule.aggregate(pts, ctx_of(5, 1)), (Vector{2.0}));
}

TEST(TrimmedMeanRule, CapsTrimWhenFewVectors) {
  TrimmedMeanRule rule;
  // m = 3, t = 1: trim min(1, 1) = 1 per side -> median element.
  const VectorList pts{{0.0}, {5.0}, {100.0}};
  EXPECT_EQ(rule.aggregate(pts, ctx_of(4, 1)), (Vector{5.0}));
}

// --- Krum / Multi-Krum ---

TEST(Krum, PicksVectorInsideCluster) {
  KrumRule rule;
  // Cluster near origin plus one far outlier; n = 5, t = 1.
  const VectorList pts{{0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1}, {0.1, 0.1},
                       {50.0, 50.0}};
  const Vector out = rule.aggregate(pts, ctx_of(5, 1));
  EXPECT_LT(norm2(out), 1.0);
}

TEST(Krum, ScoresMatchBruteForce) {
  Rng rng(3);
  const VectorList pts = random_points(rng, 7, 3);
  const std::size_t closest = 4;
  const auto scores = krum_scores(pts, closest, KrumScore::Euclidean);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::vector<double> dists;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j != i) dists.push_back(distance(pts[i], pts[j]));
    }
    std::sort(dists.begin(), dists.end());
    double expected = 0.0;
    for (std::size_t k = 0; k < closest; ++k) expected += dists[k];
    EXPECT_NEAR(scores[i], expected, 1e-12);
  }
}

TEST(Krum, SquaredFlavourMatchesBlanchardScoring) {
  Rng rng(4);
  const VectorList pts = random_points(rng, 6, 2);
  const auto scores = krum_scores(pts, 3, KrumScore::Squared);
  std::vector<double> expected;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::vector<double> dists;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j != i) dists.push_back(distance_squared(pts[i], pts[j]));
    }
    std::sort(dists.begin(), dists.end());
    expected.push_back(dists[0] + dists[1] + dists[2]);
  }
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(scores[i], expected[i], 1e-12);
  }
}

TEST(Krum, OutputIsAnInputVector) {
  Rng rng(5);
  const VectorList pts = random_points(rng, 8, 4);
  KrumRule rule;
  const Vector out = rule.aggregate(pts, ctx_of(8, 2));
  bool found = false;
  for (const auto& p : pts) {
    if (p == out) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MultiKrum, QOneEqualsKrum) {
  Rng rng(6);
  const VectorList pts = random_points(rng, 7, 3);
  KrumRule krum;
  MultiKrumRule multikrum(1);
  EXPECT_EQ(krum.aggregate(pts, ctx_of(7, 2)),
            multikrum.aggregate(pts, ctx_of(7, 2)));
}

TEST(MultiKrum, AveragesBestQ) {
  // Three tight points and one far outlier; q = 3 averages the cluster.
  MultiKrumRule rule(3);
  const VectorList pts{{0.0}, {0.2}, {0.4}, {100.0}};
  const Vector out = rule.aggregate(pts, ctx_of(4, 1));
  EXPECT_NEAR(out[0], 0.2, 1e-12);
}

TEST(MultiKrum, QZeroThrows) {
  MultiKrumRule rule(0);
  EXPECT_THROW(rule.aggregate({{1.0}, {2.0}, {3.0}}, ctx_of(3, 0)),
               std::invalid_argument);
}

// --- minimum-diameter rules ---

TEST(MdMean, AveragesMinimumDiameterSubset) {
  MinimumDiameterMeanRule rule;
  // n = 5, t = 2 -> subset size 3; cluster {0, 0.1, 0.2} wins.
  const VectorList pts{{0.0}, {0.1}, {0.2}, {7.0}, {9.0}};
  const Vector out = rule.aggregate(pts, ctx_of(5, 2));
  EXPECT_NEAR(out[0], 0.1, 1e-12);
}

TEST(MdGeom, GeometricMedianOfMinimumDiameterSubset) {
  MinimumDiameterGeoMedianRule rule;
  const VectorList pts{{0.0}, {0.1}, {0.5}, {7.0}, {9.0}};
  const Vector out = rule.aggregate(pts, ctx_of(5, 2));
  // Geometric median of {0, 0.1, 0.5} in 1-D is the middle point 0.1.
  EXPECT_NEAR(out[0], 0.1, 1e-6);
}

TEST(MdRules, IgnoreByzantineOutliersEntirely) {
  Rng rng(7);
  VectorList honest = random_points(rng, 8, 3, 0.5);
  VectorList all = honest;
  all.push_back(constant(3, 1000.0));
  all.push_back(constant(3, -1000.0));
  MinimumDiameterMeanRule md_mean;
  const Vector out = md_mean.aggregate(all, ctx_of(10, 2));
  // Output must coincide with the mean of the honest cluster.
  EXPECT_TRUE(approx_equal(out, mean(honest), 1e-9));
}

// --- hyperbox rules (the paper's Algorithm 2) ---

TEST(BoxMean, NoFaultsEqualsMeanBehaviour) {
  // With t = 0 there is exactly one subset (everything) and TH is the
  // full bounding box, so the output is the subset mean itself.
  BoxMeanRule rule;
  const VectorList pts{{0.0, 0.0}, {2.0, 2.0}, {4.0, 1.0}};
  const Vector out = rule.aggregate(pts, ctx_of(3, 0));
  EXPECT_TRUE(approx_equal(out, mean(pts), 1e-12));
}

TEST(BoxGeom, NoFaultsEqualsGeometricMedian) {
  BoxGeoMedianRule rule;
  const VectorList pts{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  const Vector out = rule.aggregate(pts, ctx_of(4, 0));
  EXPECT_TRUE(approx_equal(out, {1.0, 1.0}, 1e-7));
}

TEST(BoxGeom, OutputInsideTrustedHyperbox) {
  Rng rng(8);
  for (int trial = 0; trial < 8; ++trial) {
    VectorList honest = random_points(rng, 8, 3);
    VectorList all = honest;
    all.push_back(constant(3, 500.0));  // Byzantine outlier
    all.push_back(constant(3, -500.0));
    BoxGeoMedianRule rule;
    const Vector out = rule.aggregate(all, ctx_of(10, 2));
    // Validity (Theorem 4.4 proof): output within the honest bounding box.
    EXPECT_TRUE(Hyperbox::bounding(honest).contains(out, 1e-6));
  }
}

TEST(BoxMean, OutputInsideTrustedHyperbox) {
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    VectorList honest = random_points(rng, 4, 2);
    VectorList all = honest;
    all.push_back(constant(2, 99.0));
    BoxMeanRule rule;
    const Vector out = rule.aggregate(all, ctx_of(5, 1));
    EXPECT_TRUE(Hyperbox::bounding(honest).contains(out, 1e-6));
  }
}

TEST(BoxGeom, MatchesManualConstructionOneDim) {
  // n = 4, t = 1, m = 4 received: {0, 1, 2, 10}.
  // TH: drop 1 per side of sorted values -> [1, 2].
  // GH: geometric medians (1-D medians via Weiszfeld midpoint convention
  // for even sizes is the middle interval midpoint; subsets of size 3 have
  // odd size -> middle element): subsets {0,1,2}->1, {0,1,10}->1,
  // {0,2,10}->2, {1,2,10}->2 -> GH = [1, 2].
  // Intersection [1,2], midpoint 1.5.
  BoxGeoMedianRule rule;
  const VectorList pts{{0.0}, {1.0}, {2.0}, {10.0}};
  const Vector out = rule.aggregate(pts, ctx_of(4, 1));
  EXPECT_NEAR(out[0], 1.5, 1e-6);
}

TEST(BoxMean, MatchesManualConstructionOneDim) {
  // Same inputs; subset means: {0,1,2}->1, {0,1,10}->11/3, {0,2,10}->4,
  // {1,2,10}->13/3 -> box of means [1, 13/3]; TH = [1, 2];
  // intersection [1, 2] -> 1.5.
  BoxMeanRule rule;
  const VectorList pts{{0.0}, {1.0}, {2.0}, {10.0}};
  const Vector out = rule.aggregate(pts, ctx_of(4, 1));
  EXPECT_NEAR(out[0], 1.5, 1e-12);
}

TEST(BoxRules, SubsetAggregatesMatchSerialAndParallel) {
  Rng rng(10);
  const VectorList pts = random_points(rng, 9, 5);
  ThreadPool pool(3);
  const auto serial = subset_aggregates(
      pts, 7, nullptr, [](const VectorList& s) { return mean(s); });
  const auto parallel = subset_aggregates(
      pts, 7, &pool, [](const VectorList& s) { return mean(s); });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(approx_equal(serial[i], parallel[i], 0.0));
  }
}

TEST(BoxRules, IntersectionNonEmptyUnderAdversarialInputs) {
  // Stress Theorem 4.4's TH ∩ GH != empty guarantee with colluding
  // outliers placed to squeeze the trusted box.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 7;
    const std::size_t t = 2;
    VectorList all = random_points(rng, n - t, 4, 1.0);
    all.push_back(constant(4, rng.uniform(-100.0, 100.0)));
    all.push_back(constant(4, rng.uniform(-100.0, 100.0)));
    BoxGeoMedianRule rule;
    EXPECT_NO_THROW(rule.aggregate(all, ctx_of(n, t)));
  }
}

// --- invariance properties shared by every rule ---

class RuleInvarianceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RuleInvarianceTest, TranslationEquivariance) {
  const auto rule = make_rule(GetParam());
  Rng rng(12);
  const VectorList pts = random_points(rng, 7, 3);
  const Vector shift{10.0, -5.0, 3.0};
  VectorList shifted;
  for (const auto& p : pts) shifted.push_back(add(p, shift));
  const Vector a = rule->aggregate(pts, ctx_of(7, 2));
  const Vector b = rule->aggregate(shifted, ctx_of(7, 2));
  EXPECT_TRUE(approx_equal(add(a, shift), b, 1e-5))
      << "rule " << GetParam();
}

TEST_P(RuleInvarianceTest, PermutationInvariance) {
  const auto rule = make_rule(GetParam());
  Rng rng(13);
  VectorList pts = random_points(rng, 7, 3);
  VectorList shuffled = pts;
  Rng shuffle_rng(99);
  shuffle_rng.shuffle(shuffled);
  const Vector a = rule->aggregate(pts, ctx_of(7, 2));
  const Vector b = rule->aggregate(shuffled, ctx_of(7, 2));
  EXPECT_TRUE(approx_equal(a, b, 1e-5)) << "rule " << GetParam();
}

TEST_P(RuleInvarianceTest, UnanimityOnIdenticalInputs) {
  const auto rule = make_rule(GetParam());
  const VectorList pts(7, Vector{3.0, -1.0, 2.0});
  const Vector out = rule->aggregate(pts, ctx_of(7, 2));
  EXPECT_TRUE(approx_equal(out, {3.0, -1.0, 2.0}, 1e-9))
      << "rule " << GetParam();
}

TEST_P(RuleInvarianceTest, ScaleEquivariance) {
  const auto rule = make_rule(GetParam());
  Rng rng(14);
  const VectorList pts = random_points(rng, 7, 3);
  VectorList scaled;
  for (const auto& p : pts) scaled.push_back(scale(p, 2.5));
  const Vector a = rule->aggregate(pts, ctx_of(7, 2));
  const Vector b = rule->aggregate(scaled, ctx_of(7, 2));
  EXPECT_TRUE(approx_equal(scale(a, 2.5), b, 1e-5)) << "rule " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllRules, RuleInvarianceTest,
                         ::testing::ValuesIn(all_rule_names()));

// --- robust rules keep outputs near honest data under outliers ---

class RobustRuleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RobustRuleTest, OutlierResistance) {
  const auto rule = make_rule(GetParam());
  Rng rng(15);
  for (int trial = 0; trial < 5; ++trial) {
    VectorList honest = random_points(rng, 8, 3, 1.0);
    VectorList all = honest;
    all.push_back(constant(3, 1e6));
    all.push_back(constant(3, -1e6));
    const Vector out = rule->aggregate(all, ctx_of(10, 2));
    // Output stays within a small blow-up of the honest bounding box
    // (robustness); the plain mean would be dragged to ~1e5.
    EXPECT_TRUE(
        Hyperbox::bounding(honest).inflated(1.0).contains(out, 1e-6))
        << "rule " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RobustRules, RobustRuleTest,
                         ::testing::Values("CW-MEDIAN", "TRIM-MEAN", "KRUM",
                                           "MD-MEAN", "MD-GEOM", "BOX-MEAN",
                                           "BOX-GEOM", "MEDOID", "GEOMED"));

// --- registry ---

TEST(Registry, CreatesEveryAdvertisedRule) {
  for (const auto& name : all_rule_names()) {
    const auto rule = make_rule(name);
    ASSERT_NE(rule, nullptr);
    EXPECT_EQ(rule->name(), name);
  }
}

TEST(Registry, MultiKrumParsesQ) {
  const auto rule = make_rule("MULTIKRUM-5");
  EXPECT_EQ(rule->name(), "MULTIKRUM-5");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_rule("NOPE"), std::invalid_argument);
}

}  // namespace
}  // namespace bcl
