// Tests for src/geometry: subset enumeration, Weiszfeld geometric median,
// medoid, minimum enclosing balls, minimum-diameter subsets, planar convex
// geometry, and the exact 1-D/2-D safe areas of Definition 2.3.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geometry/convex2d.hpp"
#include "geometry/enclosing_ball.hpp"
#include "geometry/medoid.hpp"
#include "geometry/min_diameter.hpp"
#include "geometry/safe_area.hpp"
#include "geometry/subsets.hpp"
#include "geometry/weiszfeld.hpp"
#include "linalg/hyperbox.hpp"
#include "util/rng.hpp"

namespace bcl {
namespace {

// --- subsets ---

TEST(Subsets, BinomialKnownValues) {
  EXPECT_EQ(binomial(10, 8), 45u);
  EXPECT_EQ(binomial(10, 0), 1u);
  EXPECT_EQ(binomial(10, 10), 1u);
  EXPECT_EQ(binomial(5, 7), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Subsets, BinomialOverflowDetected) {
  EXPECT_THROW(binomial(100, 50), std::overflow_error);
}

TEST(Subsets, EnumerationCountMatchesBinomial) {
  std::size_t count = 0;
  for_each_combination(7, 3, [&](const std::vector<std::size_t>&) { ++count; });
  EXPECT_EQ(count, binomial(7, 3));
}

TEST(Subsets, EnumerationIsLexicographicAndSorted) {
  const auto combos = all_combinations(4, 2);
  ASSERT_EQ(combos.size(), 6u);
  EXPECT_EQ(combos.front(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(combos.back(), (std::vector<std::size_t>{2, 3}));
  for (std::size_t i = 1; i < combos.size(); ++i) {
    EXPECT_LT(combos[i - 1], combos[i]);
  }
}

TEST(Subsets, EnumerationUniqueSubsets) {
  const auto combos = all_combinations(8, 5);
  std::set<std::vector<std::size_t>> unique(combos.begin(), combos.end());
  EXPECT_EQ(unique.size(), combos.size());
}

TEST(Subsets, FullAndEmptySubsets) {
  EXPECT_EQ(all_combinations(3, 3).size(), 1u);
  EXPECT_EQ(all_combinations(3, 0).size(), 1u);
  EXPECT_TRUE(all_combinations(3, 4).empty());
}

TEST(Subsets, GatherPicksIndices) {
  const std::vector<int> v{10, 20, 30, 40};
  EXPECT_EQ(gather(v, {0, 3}), (std::vector<int>{10, 40}));
}

// --- Weiszfeld / geometric median ---

TEST(Weiszfeld, SinglePointIsItself) {
  const auto r = geometric_median({{3.0, 4.0}});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.point, (Vector{3.0, 4.0}));
}

TEST(Weiszfeld, TwoPointsReturnsMidpoint) {
  const auto r = geometric_median({{0.0, 0.0}, {2.0, 4.0}});
  EXPECT_EQ(r.point, (Vector{1.0, 2.0}));
}

TEST(Weiszfeld, EquilateralTriangleMedianIsCentroid) {
  const VectorList pts{{0.0, 0.0}, {1.0, 0.0}, {0.5, std::sqrt(3.0) / 2.0}};
  const auto r = geometric_median(pts);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(approx_equal(r.point, mean(pts), 1e-7));
}

TEST(Weiszfeld, SquareMedianIsCenter) {
  const VectorList pts{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  const auto r = geometric_median(pts);
  EXPECT_TRUE(approx_equal(r.point, {1.0, 1.0}, 1e-7));
}

TEST(Weiszfeld, CollinearOddPointsMedianIsMiddle) {
  const VectorList pts{{0.0}, {1.0}, {10.0}};
  const auto r = geometric_median(pts);
  EXPECT_NEAR(r.point[0], 1.0, 1e-7);
}

TEST(Weiszfeld, MajorityPropertyShortCircuits) {
  // 3 of 5 points coincide -> the majority point is the geometric median.
  const VectorList pts{{5.0, 5.0}, {5.0, 5.0}, {5.0, 5.0}, {0.0, 0.0},
                       {9.0, 1.0}};
  const auto r = geometric_median(pts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.point, (Vector{5.0, 5.0}));
}

TEST(Weiszfeld, ObtuseTriangleAnchorsAtVertex) {
  // If one vertex sees the other two at an angle >= 120 degrees, that
  // vertex IS the geometric median (classical Fermat point fact).
  const VectorList pts{{0.0, 0.0}, {10.0, 0.1}, {-10.0, 0.1}};
  const auto r = geometric_median(pts);
  EXPECT_TRUE(approx_equal(r.point, {0.0, 0.0}, 1e-6));
}

TEST(Weiszfeld, ObjectiveIsMinimalAgainstPerturbations) {
  Rng rng(5);
  VectorList pts;
  for (int i = 0; i < 9; ++i) {
    pts.push_back({rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0),
                   rng.uniform(-4.0, 4.0)});
  }
  const auto r = geometric_median(pts);
  ASSERT_TRUE(r.converged);
  const double obj = geometric_median_objective(pts, r.point);
  for (int trial = 0; trial < 30; ++trial) {
    Vector q = r.point;
    for (auto& x : q) x += rng.gaussian(0.0, 0.05);
    EXPECT_GE(geometric_median_objective(pts, q), obj - 1e-7);
  }
}

TEST(Weiszfeld, ConvergedObjectiveMatchesReportedObjective) {
  const VectorList pts{{0.0, 1.0}, {1.0, 0.0}, {-1.0, 0.0}, {0.0, -1.0}};
  const auto r = geometric_median(pts);
  EXPECT_NEAR(r.objective, geometric_median_objective(pts, r.point), 1e-12);
}

TEST(Weiszfeld, EmptyListThrows) {
  EXPECT_THROW(geometric_median({}), std::invalid_argument);
}

TEST(Weiszfeld, TranslationEquivariance) {
  Rng rng(6);
  VectorList pts;
  for (int i = 0; i < 7; ++i) {
    pts.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
  }
  const Vector shift{100.0, -50.0};
  VectorList shifted;
  for (const auto& p : pts) shifted.push_back(add(p, shift));
  const Vector m1 = geometric_median_point(pts);
  const Vector m2 = geometric_median_point(shifted);
  EXPECT_TRUE(approx_equal(add(m1, shift), m2, 1e-6));
}

TEST(Weiszfeld, HighDimensionalCross) {
  // Points at +-e_j in d dims: by symmetry the median is the origin.
  const std::size_t d = 16;
  VectorList pts;
  for (std::size_t j = 0; j < d; ++j) {
    pts.push_back(unit(d, j, 1.0));
    pts.push_back(unit(d, j, -1.0));
  }
  const auto r = geometric_median(pts);
  EXPECT_TRUE(approx_equal(r.point, zeros(d), 1e-7));
}

// --- medoid ---

TEST(Medoid, PicksInputPointMinimizingDistanceSum) {
  const VectorList pts{{0.0}, {1.0}, {2.0}, {10.0}};
  EXPECT_EQ(medoid_index(pts), 1u);  // 1 has sum 1+1+9 = 11, best
  EXPECT_EQ(medoid(pts), (Vector{1.0}));
}

TEST(Medoid, TieBreaksToLowestIndex) {
  const VectorList pts{{0.0}, {2.0}};
  EXPECT_EQ(medoid_index(pts), 0u);
}

TEST(Medoid, ScoreComputation) {
  const VectorList pts{{0.0}, {3.0}, {5.0}};
  EXPECT_DOUBLE_EQ(medoid_score(pts, 0), 8.0);
  EXPECT_DOUBLE_EQ(medoid_score(pts, 1), 5.0);
  EXPECT_THROW(medoid_score(pts, 3), std::invalid_argument);
}

TEST(Medoid, MedoidDiffersFromGeometricMedianInGeneral) {
  // Theorem 4.3 rests on this: the medoid is constrained to input points.
  const VectorList pts{{0.0, 0.0}, {2.0, 0.0}, {1.0, 2.0}};
  const Vector med = medoid(pts);
  const Vector geo = geometric_median_point(pts);
  EXPECT_GT(distance(med, geo), 0.1);
}

// --- enclosing ball ---

TEST(EnclosingBall, OnePointZeroRadius) {
  const Ball b = minimum_enclosing_ball({{1.0, 2.0, 3.0}});
  EXPECT_DOUBLE_EQ(b.radius, 0.0);
  EXPECT_EQ(b.center, (Vector{1.0, 2.0, 3.0}));
}

TEST(EnclosingBall, OneDimensionalExactInterval) {
  const Ball b = minimum_enclosing_ball({{3.0}, {-1.0}, {2.0}});
  EXPECT_DOUBLE_EQ(b.center[0], 1.0);
  EXPECT_DOUBLE_EQ(b.radius, 2.0);
}

TEST(EnclosingBall, TwoDimensionalDiametralPair) {
  const Ball b = minimum_enclosing_ball({{0.0, 0.0}, {4.0, 0.0}, {2.0, 1.0}});
  EXPECT_NEAR(b.center[0], 2.0, 1e-9);
  EXPECT_NEAR(b.center[1], 0.0, 1e-9);
  EXPECT_NEAR(b.radius, 2.0, 1e-9);
}

TEST(EnclosingBall, TwoDimensionalCircumscribed) {
  // Equilateral-ish triangle needing all three support points.
  const VectorList pts{{0.0, 0.0}, {2.0, 0.0}, {1.0, 1.8}};
  const Ball b = welzl_circle(pts);
  for (const auto& p : pts) {
    EXPECT_LE(distance(p, b.center), b.radius + 1e-9);
  }
  // All three on the boundary.
  for (const auto& p : pts) {
    EXPECT_NEAR(distance(p, b.center), b.radius, 1e-6);
  }
}

TEST(EnclosingBall, HighDimensionalCoversAllPoints) {
  Rng rng(21);
  VectorList pts;
  for (int i = 0; i < 40; ++i) {
    Vector p(8);
    for (auto& x : p) x = rng.uniform(-2.0, 2.0);
    pts.push_back(p);
  }
  const Ball b = minimum_enclosing_ball(pts);
  for (const auto& p : pts) {
    EXPECT_LE(distance(p, b.center), b.radius + 1e-9);
  }
  // Not wildly larger than the half-diameter lower bound.
  EXPECT_LE(b.radius, diameter(pts));
  EXPECT_GE(b.radius, diameter(pts) / 2.0 - 1e-9);
}

TEST(EnclosingBall, HighDimensionalNearOptimalOnSymmetricInput) {
  // +-e_j cross in d dims: optimal ball is the unit ball at the origin.
  const std::size_t d = 6;
  VectorList pts;
  for (std::size_t j = 0; j < d; ++j) {
    pts.push_back(unit(d, j, 1.0));
    pts.push_back(unit(d, j, -1.0));
  }
  const Ball b = minimum_enclosing_ball(pts);
  EXPECT_NEAR(b.radius, 1.0, 0.05);
  EXPECT_LE(norm2(b.center), 0.05);
}

TEST(EnclosingBall, EmptyThrows) {
  EXPECT_THROW(minimum_enclosing_ball({}), std::invalid_argument);
}

// --- min diameter subsets ---

TEST(MinDiameter, FindsObviousCluster) {
  const VectorList pts{{0.0}, {0.1}, {0.2}, {50.0}, {51.0}};
  const auto r = min_diameter_subset(pts, 3);
  EXPECT_EQ(r.indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_NEAR(r.diameter, 0.2, 1e-12);
}

TEST(MinDiameter, SubsetSizeOneHasZeroDiameter) {
  const auto r = min_diameter_subset({{5.0}, {9.0}}, 1);
  EXPECT_EQ(r.indices.size(), 1u);
  EXPECT_DOUBLE_EQ(r.diameter, 0.0);
}

TEST(MinDiameter, FullSetDiameterMatchesDiameterFunction) {
  const VectorList pts{{0.0, 0.0}, {3.0, 0.0}, {0.0, 4.0}};
  const auto r = min_diameter_subset(pts, 3);
  EXPECT_DOUBLE_EQ(r.diameter, diameter(pts));
}

TEST(MinDiameter, InvalidSizesThrow) {
  const VectorList pts{{0.0}};
  EXPECT_THROW(min_diameter_subset(pts, 0), std::invalid_argument);
  EXPECT_THROW(min_diameter_subset(pts, 2), std::invalid_argument);
}

TEST(MinDiameter, MatchesBruteForceOnRandomInputs) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    VectorList pts;
    for (int i = 0; i < 9; ++i) {
      pts.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
    }
    const std::size_t k = 5;
    const auto fast = min_diameter_subset(pts, k);
    double best = 1e300;
    for_each_combination(pts.size(), k,
                         [&](const std::vector<std::size_t>& idx) {
                           best = std::min(best, diameter(gather(pts, idx)));
                         });
    EXPECT_NEAR(fast.diameter, best, 1e-12);
  }
}

TEST(MinDiameter, TiedSubsetEnumerationFindsAllOptima) {
  // Two identical clusters of 3, ask for k = 3: both clusters are optimal.
  const VectorList pts{{0.0}, {0.1}, {0.2}, {10.0}, {10.1}, {10.2}};
  const auto tied = min_diameter_subsets(pts, 3, 1e-9);
  EXPECT_EQ(tied.size(), 2u);
}

TEST(MinDiameter, TieEnumerationContainsLexicographicWinner) {
  const VectorList pts{{0.0}, {1.0}, {2.0}, {3.0}};
  const auto best = min_diameter_subset(pts, 2);
  const auto tied = min_diameter_subsets(pts, 2, 1e-9);
  bool found = false;
  for (const auto& r : tied) {
    if (r.indices == best.indices) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(tied.size(), 3u);  // {0,1}, {1,2}, {2,3} all have diameter 1
}

// --- convex 2-D geometry ---

TEST(Convex2D, HullOfSquareWithInteriorPoint) {
  const VectorList pts{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0},
                       {0.5, 0.5}};
  const Polygon2 hull = convex_hull_2d(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_GT(polygon_area(hull), 0.99);
}

TEST(Convex2D, HullOfCollinearPointsIsSegment) {
  const Polygon2 hull = convex_hull_2d({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}});
  EXPECT_EQ(hull.size(), 2u);
}

TEST(Convex2D, HullDeduplicates) {
  const Polygon2 hull = convex_hull_2d({{1.0, 1.0}, {1.0, 1.0}});
  EXPECT_EQ(hull.size(), 1u);
}

TEST(Convex2D, AreaOfUnitSquare) {
  const Polygon2 square{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(polygon_area(square), 1.0);
}

TEST(Convex2D, ContainsInteriorBoundaryExterior) {
  const Polygon2 square{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  EXPECT_TRUE(polygon_contains(square, {1.0, 1.0}));
  EXPECT_TRUE(polygon_contains(square, {0.0, 1.0}));
  EXPECT_FALSE(polygon_contains(square, {3.0, 1.0}));
}

TEST(Convex2D, ClipOverlappingSquares) {
  const Polygon2 a{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  const Polygon2 b{{1.0, 1.0}, {3.0, 1.0}, {3.0, 3.0}, {1.0, 3.0}};
  const Polygon2 inter = clip_convex(a, b);
  EXPECT_NEAR(polygon_area(inter), 1.0, 1e-9);
}

TEST(Convex2D, ClipDisjointIsEmpty) {
  const Polygon2 a{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  const Polygon2 b{{5.0, 5.0}, {6.0, 5.0}, {6.0, 6.0}, {5.0, 6.0}};
  EXPECT_TRUE(clip_convex(a, b).empty());
}

TEST(Convex2D, ClipAgainstPointClipper) {
  const Polygon2 square{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  const Polygon2 inside = clip_convex(square, {{1.0, 1.0}});
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside[0], (Vector{1.0, 1.0}));
  EXPECT_TRUE(clip_convex(square, {Vector{5.0, 5.0}}).empty());
}

TEST(Convex2D, ClipAgainstSegmentClipper) {
  const Polygon2 square{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  // Horizontal segment crossing the square.
  const Polygon2 segment{{-1.0, 1.0}, {3.0, 1.0}};
  const Polygon2 inter = clip_convex(square, segment);
  ASSERT_GE(inter.size(), 2u);
  for (const auto& v : inter) {
    EXPECT_NEAR(v[1], 1.0, 1e-9);
    EXPECT_GE(v[0], -1e-9);
    EXPECT_LE(v[0], 2.0 + 1e-9);
  }
}

TEST(Convex2D, CentroidOfEmptyIsNull) {
  EXPECT_FALSE(polygon_centroid({}).has_value());
  const auto c = polygon_centroid({{1.0, 2.0}});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (Vector{1.0, 2.0}));
}

// --- safe area ---

TEST(SafeArea, OneDimensionalIsTrimmedInterval) {
  // n = 5, t = 1 -> [2nd smallest, 4th smallest].
  const auto interval = safe_area_1d({5.0, 1.0, 3.0, 2.0, 4.0}, 1);
  ASSERT_TRUE(interval.has_value());
  EXPECT_DOUBLE_EQ(interval->first, 2.0);
  EXPECT_DOUBLE_EQ(interval->second, 4.0);
}

TEST(SafeArea, OneDimensionalEmptyWhenTooManyFaults) {
  EXPECT_FALSE(safe_area_1d({1.0, 2.0, 3.0, 4.0}, 2).has_value());
}

TEST(SafeArea, OneDimensionalPointRepresentative) {
  const auto p = safe_area_point({{1.0}, {2.0}, {3.0}, {4.0}, {5.0}}, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ((*p)[0], 3.0);
}

TEST(SafeArea, TwoDimensionalInsideAllSubsetHulls) {
  Rng rng(41);
  VectorList pts;
  for (int i = 0; i < 7; ++i) {
    pts.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
  }
  const std::size_t t = 1;
  const Polygon2 area = safe_area_2d(pts, t);
  if (!area.empty()) {
    const auto rep = polygon_centroid(area);
    ASSERT_TRUE(rep.has_value());
    for_each_combination(pts.size(), pts.size() - t,
                         [&](const std::vector<std::size_t>& idx) {
                           const Polygon2 hull =
                               convex_hull_2d(gather(pts, idx));
                           EXPECT_TRUE(polygon_contains(hull, *rep, 1e-6));
                         });
  }
}

TEST(SafeArea, TwoDimensionalDegeneratesToSinglePoint) {
  // Theorem 4.1 construction for d = 2, f = 1: one correct node and the
  // Byzantine node at the origin, two groups of nodes at v + eps_j.  All
  // (n-1)-subset hulls intersect only at the shared point v0 = origin.
  const VectorList pts{{0.0, 0.0},          // correct node at origin
                       {0.0, 0.0},          // Byzantine copy at origin
                       {5.0, 0.0},          // group 1 (f = 1 node)
                       {5.0 + 0.0, 0.1}};   // group 2 = v + eps*e_2
  const Polygon2 area = safe_area_2d(pts, 1);
  ASSERT_FALSE(area.empty());
  const auto rep = polygon_centroid(area);
  ASSERT_TRUE(rep.has_value());
  // The safe area collapses near the duplicated origin point.
  EXPECT_LT(norm2(*rep), 1e-6);
}

TEST(SafeArea, HighDimensionalRequestThrows) {
  EXPECT_THROW(safe_area_point({{1.0, 1.0, 1.0}}, 0), std::invalid_argument);
}

// --- Weiszfeld property sweep ---

class WeiszfeldPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WeiszfeldPropertyTest, FirstOrderOptimalityHolds) {
  Rng rng(7000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + rng.uniform_u64(6);
  const std::size_t d = 2 + rng.uniform_u64(5);
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-3.0, 3.0);
    pts.push_back(p);
  }
  const auto r = geometric_median(pts);
  ASSERT_TRUE(r.converged);
  // Gradient of sum ||v_i - y|| is sum of unit vectors toward y; at the
  // optimum it (sub)vanishes.  Skip anchored cases (handled by Kuhn's
  // condition internally).
  bool anchored = false;
  Vector grad = zeros(d);
  for (const auto& p : pts) {
    const double dist = distance(p, r.point);
    if (dist < 1e-9) {
      anchored = true;
      break;
    }
    axpy(grad, 1.0 / dist, sub(r.point, p));
  }
  if (!anchored) {
    EXPECT_LT(norm2(grad), 1e-4);
  }
}

TEST_P(WeiszfeldPropertyTest, MedianInsideBoundingBox) {
  Rng rng(8000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.uniform_u64(8);
  const std::size_t d = 1 + rng.uniform_u64(6);
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-10.0, 10.0);
    pts.push_back(p);
  }
  const auto r = geometric_median(pts);
  EXPECT_TRUE(Hyperbox::bounding(pts).contains(r.point, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeiszfeldPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace bcl
