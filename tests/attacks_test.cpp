// Tests for src/attacks: every Byzantine client behaviour and the
// label-flip data poisoning helper.

#include <gtest/gtest.h>

#include <cmath>

#include "attacks/attack.hpp"
#include "attacks/registry.hpp"
#include "linalg/hyperbox.hpp"
#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace bcl {
namespace {

const Vector kOwn{1.0, -2.0, 3.0};
const VectorList kHonest{{1.0, 0.0, 0.0}, {3.0, 0.0, 0.0}};

TEST(SignFlip, NegatesOwnGradient) {
  SignFlipAttack attack;
  Rng rng(1);
  const auto out = attack.corrupt(kOwn, kHonest, 0, rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Vector{-1.0, 2.0, -3.0}));
}

TEST(SignFlip, ScaleMultiplies) {
  SignFlipAttack attack(4.0);
  Rng rng(2);
  const auto out = attack.corrupt(kOwn, kHonest, 3, rng);
  EXPECT_EQ(*out, (Vector{-4.0, 8.0, -12.0}));
}

TEST(Crash, SilentFromRound) {
  CrashAttack attack(2);
  Rng rng(3);
  EXPECT_TRUE(attack.corrupt(kOwn, kHonest, 0, rng).has_value());
  EXPECT_TRUE(attack.corrupt(kOwn, kHonest, 1, rng).has_value());
  EXPECT_FALSE(attack.corrupt(kOwn, kHonest, 2, rng).has_value());
  EXPECT_FALSE(attack.corrupt(kOwn, kHonest, 100, rng).has_value());
}

TEST(Crash, HonestBeforeCrash) {
  CrashAttack attack(1);
  Rng rng(4);
  EXPECT_EQ(*attack.corrupt(kOwn, kHonest, 0, rng), kOwn);
}

TEST(RandomAttack, IgnoresDataAndMatchesSigma) {
  RandomGradientAttack attack(2.0);
  Rng rng(5);
  double sum2 = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const auto out = attack.corrupt(kOwn, kHonest, 0, rng);
    sum2 += norm2_squared(*out);
  }
  // E||g||^2 = d * sigma^2 = 3 * 4 = 12.
  EXPECT_NEAR(sum2 / trials, 12.0, 1.0);
}

TEST(ScaleAttack, Magnifies) {
  ScaleAttack attack(100.0);
  Rng rng(6);
  EXPECT_EQ(*attack.corrupt(kOwn, kHonest, 0, rng),
            (Vector{100.0, -200.0, 300.0}));
}

TEST(ZeroAttack, AllZeros) {
  ZeroAttack attack;
  Rng rng(7);
  EXPECT_EQ(*attack.corrupt(kOwn, kHonest, 0, rng), zeros(3));
}

TEST(OppositeMean, NegatesHonestMean) {
  OppositeMeanAttack attack;
  Rng rng(8);
  const auto out = attack.corrupt(kOwn, kHonest, 0, rng);
  EXPECT_EQ(*out, (Vector{-2.0, 0.0, 0.0}));
}

TEST(OppositeMean, FallsBackToOwnWhenNoHonest) {
  OppositeMeanAttack attack;
  Rng rng(9);
  const auto out = attack.corrupt(kOwn, {}, 0, rng);
  EXPECT_EQ(*out, scale(kOwn, -1.0));
}

TEST(NoAttack, PassesThrough) {
  NoAttack attack;
  Rng rng(10);
  EXPECT_EQ(*attack.corrupt(kOwn, kHonest, 0, rng), kOwn);
}

TEST(Registry, CreatesAllAttacks) {
  for (const auto& name : all_attack_names()) {
    const auto attack = make_attack(name);
    ASSERT_NE(attack, nullptr);
    // "sign-flip-10" is a configured SignFlipAttack; its name() reports the
    // family.
    if (name != "sign-flip-10") {
      EXPECT_EQ(attack->name(), name);
    }
  }
  EXPECT_THROW(make_attack("bogus"), std::invalid_argument);
}

TEST(Alie, SubmitsMeanPlusZStd) {
  ALittleIsEnoughAttack attack(2.0);
  Rng rng(20);
  // honest columns: coord0 {1, 3} -> mean 2, std 1; coord1 {0, 0}.
  const VectorList honest{{1.0, 0.0}, {3.0, 0.0}};
  const auto out = attack.corrupt({9.0, 9.0}, honest, 0, rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ((*out)[0], 4.0);  // 2 + 2*1
  EXPECT_DOUBLE_EQ((*out)[1], 0.0);
}

TEST(Alie, StaysInsideTrimmedRangeWithSmallZ) {
  // With z <= 1 the ALIE vector per coordinate is within the honest spread
  // whenever enough honest values straddle the mean, which is what makes it
  // survive coordinate trimming.
  ALittleIsEnoughAttack attack(0.5);
  Rng rng(21);
  VectorList honest;
  for (int i = 0; i < 9; ++i) {
    honest.push_back({rng.gaussian(), rng.gaussian()});
  }
  const auto out = attack.corrupt(honest[0], honest, 0, rng);
  ASSERT_TRUE(out.has_value());
  const Hyperbox box = Hyperbox::bounding(honest);
  EXPECT_TRUE(box.contains(*out, 1e-9));
}

TEST(Alie, FallsBackToOwnGradientWithoutHonestView) {
  ALittleIsEnoughAttack attack;
  Rng rng(22);
  EXPECT_EQ(*attack.corrupt(kOwn, {}, 0, rng), kOwn);
}

TEST(SignFlipTen, ScalesByTen) {
  const auto attack = make_attack("sign-flip-10");
  Rng rng(23);
  const auto out = attack->corrupt({1.0}, {}, 0, rng);
  EXPECT_DOUBLE_EQ((*out)[0], -10.0);
}

TEST(LabelFlip, RemapsOnlyShardLabels) {
  ml::Dataset data;
  data.num_classes = 10;
  data.channels = data.height = data.width = 1;
  for (std::uint8_t c = 0; c < 10; ++c) {
    data.images.push_back({0.0});
    data.labels.push_back(c);
  }
  flip_labels_in_place(data, {0, 9});
  EXPECT_EQ(data.labels[0], 9);   // 0 -> 9
  EXPECT_EQ(data.labels[9], 0);   // 9 -> 0
  EXPECT_EQ(data.labels[5], 5);   // untouched (not in shard)
}

TEST(Attacks, DeterministicGivenSameRngState) {
  RandomGradientAttack attack(1.0);
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(*attack.corrupt(kOwn, kHonest, 0, a),
            *attack.corrupt(kOwn, kHonest, 0, b));
}

}  // namespace
}  // namespace bcl
