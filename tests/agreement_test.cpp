// Tests for src/agreement: epsilon-agreement, validity (outputs inside the
// honest bounding box), the E_max halving of Theorem 4.4, fixed-round
// scheduling, and the round functions.

#include <gtest/gtest.h>

#include <cmath>

#include "agreement/protocol.hpp"
#include "agreement/round_function.hpp"
#include "linalg/hyperbox.hpp"
#include "network/adversary.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

VectorList random_inputs(Rng& rng, std::size_t n, std::size_t d,
                         double span = 5.0) {
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-span, span);
    pts.push_back(p);
  }
  return pts;
}

AgreementConfig box_geom_config(std::size_t n, std::size_t t,
                                double epsilon = 1e-4) {
  AgreementConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.round_function = make_round_function("BOX-GEOM");
  cfg.epsilon = epsilon;
  cfg.max_rounds = 80;
  return cfg;
}

TEST(Agreement, NoFaultsBoxGeomConverges) {
  Rng rng(1);
  const std::size_t n = 6;
  const VectorList inputs = random_inputs(rng, n, 3);
  NoAdversary adversary;
  const auto result =
      run_approximate_agreement(inputs, adversary, box_geom_config(n, 1));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.outputs.size(), n);
  EXPECT_LT(diameter(result.outputs), 1e-4);
}

TEST(Agreement, OutputsInsideHonestBoundingBox) {
  // Hyperbox validity: every honest output lies inside the bounding box of
  // the honest inputs, whatever the Byzantine vectors are.
  Rng rng(2);
  const std::size_t n = 7;
  const std::size_t t = 2;
  VectorList inputs = random_inputs(rng, n, 2);
  FixedVectorAdversary adversary({5, 6}, constant(2, 1000.0));
  VectorList honest_inputs(inputs.begin(), inputs.begin() + 5);
  const auto result =
      run_approximate_agreement(inputs, adversary, box_geom_config(n, t));
  const Hyperbox honest_box = Hyperbox::bounding(honest_inputs);
  for (const auto& out : result.outputs) {
    EXPECT_TRUE(honest_box.contains(out, 1e-6));
  }
}

TEST(Agreement, MaxEdgeHalvesEveryRound) {
  // Theorem 4.4: E_max(TH^{r+1}) <= E_max(TH^r) / 2.
  Rng rng(3);
  const std::size_t n = 7;
  const std::size_t t = 2;
  VectorList inputs = random_inputs(rng, n, 3);
  SignFlipAdversary adversary({5, 6});
  AgreementConfig cfg = box_geom_config(n, t, 0.0);  // never early-stop
  const auto result = run_fixed_rounds_agreement(inputs, adversary, 8, cfg);
  const auto& edges = result.trace.honest_max_edge;
  ASSERT_GE(edges.size(), 9u);
  for (std::size_t r = 0; r + 1 < edges.size(); ++r) {
    EXPECT_LE(edges[r + 1], 0.5 * edges[r] + 1e-9)
        << "round " << r << ": " << edges[r] << " -> " << edges[r + 1];
  }
}

TEST(Agreement, BoxMeanAlsoContracts) {
  Rng rng(4);
  const std::size_t n = 6;
  VectorList inputs = random_inputs(rng, n, 2);
  NoAdversary adversary;
  AgreementConfig cfg;
  cfg.n = n;
  cfg.t = 1;
  cfg.round_function = make_round_function("BOX-MEAN");
  cfg.epsilon = 1e-5;
  cfg.max_rounds = 60;
  const auto result = run_approximate_agreement(inputs, adversary, cfg);
  EXPECT_TRUE(result.converged);
}

TEST(Agreement, EpsilonAgreementReachedWithinLogRounds) {
  // Halving from initial diameter D needs about log2(D/eps) rounds.
  Rng rng(5);
  const std::size_t n = 7;
  VectorList inputs = random_inputs(rng, n, 2, 8.0);
  NoAdversary adversary;
  AgreementConfig cfg = box_geom_config(n, 2, 1e-3);
  const auto result = run_approximate_agreement(inputs, adversary, cfg);
  ASSERT_TRUE(result.converged);
  const double d0 = result.trace.honest_diameter.front();
  // Diameter <= sqrt(d) * E_max and E_max halves, so bound the rounds by
  // log2(sqrt(d) * d0 / eps) plus slack.
  const double bound =
      std::log2(std::sqrt(2.0) * (d0 + 1.0) / 1e-3) + 4.0;
  EXPECT_LE(static_cast<double>(result.rounds), bound);
}

TEST(Agreement, CrashFaultsTolerated) {
  Rng rng(6);
  const std::size_t n = 7;
  VectorList inputs = random_inputs(rng, n, 3);
  CrashAdversary adversary({5, 6}, /*crash_round=*/1,
                           {inputs[5], inputs[6]});
  const auto result =
      run_approximate_agreement(inputs, adversary, box_geom_config(n, 2));
  EXPECT_TRUE(result.converged);
}

TEST(Agreement, SilentFromStartTolerated) {
  Rng rng(7);
  const std::size_t n = 7;
  VectorList inputs = random_inputs(rng, n, 2);
  CrashAdversary adversary({5, 6}, /*crash_round=*/0, {zeros(2), zeros(2)});
  const auto result =
      run_approximate_agreement(inputs, adversary, box_geom_config(n, 2));
  EXPECT_TRUE(result.converged);
  // Honest nodes received exactly n - f = 5 messages per round.
  EXPECT_EQ(result.network.broadcasts_skipped, 2 * result.network.rounds);
}

TEST(Agreement, FixedRoundsRunsExactCount) {
  Rng rng(8);
  const std::size_t n = 5;
  VectorList inputs = random_inputs(rng, n, 2);
  NoAdversary adversary;
  AgreementConfig cfg = box_geom_config(n, 1, 0.0);
  const auto result = run_fixed_rounds_agreement(inputs, adversary, 3, cfg);
  EXPECT_EQ(result.rounds, 3u);
  EXPECT_EQ(result.trace.honest_diameter.size(), 4u);
}

TEST(Agreement, HonestIdsSkipByzantine) {
  Rng rng(9);
  const std::size_t n = 5;
  VectorList inputs = random_inputs(rng, n, 1);
  FixedVectorAdversary adversary({2}, {0.0});
  const auto result =
      run_approximate_agreement(inputs, adversary, box_geom_config(n, 1));
  EXPECT_EQ(result.honest_ids, (std::vector<std::size_t>{0, 1, 3, 4}));
}

TEST(Agreement, TooManyByzantineThrows) {
  VectorList inputs(4, Vector{0.0});
  FixedVectorAdversary adversary({0, 1}, {0.0});
  EXPECT_THROW(
      run_approximate_agreement(inputs, adversary, box_geom_config(4, 1)),
      std::invalid_argument);
}

TEST(Agreement, InputSizeMismatchThrows) {
  VectorList inputs(3, Vector{0.0});
  NoAdversary adversary;
  EXPECT_THROW(
      run_approximate_agreement(inputs, adversary, box_geom_config(4, 1)),
      std::invalid_argument);
}

TEST(Agreement, MissingRoundFunctionThrows) {
  VectorList inputs(4, Vector{0.0});
  NoAdversary adversary;
  AgreementConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  EXPECT_THROW(run_approximate_agreement(inputs, adversary, cfg),
               std::invalid_argument);
}

TEST(Agreement, ParallelPoolMatchesSerial) {
  Rng rng(10);
  const std::size_t n = 6;
  VectorList inputs = random_inputs(rng, n, 2);
  SignFlipAdversary adv1({5});
  SignFlipAdversary adv2({5});
  AgreementConfig serial_cfg = box_geom_config(n, 1, 0.0);
  AgreementConfig parallel_cfg = serial_cfg;
  ThreadPool pool(3);
  parallel_cfg.pool = &pool;
  const auto a = run_fixed_rounds_agreement(inputs, adv1, 4, serial_cfg);
  const auto b = run_fixed_rounds_agreement(inputs, adv2, 4, parallel_cfg);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_TRUE(approx_equal(a.outputs[i], b.outputs[i], 0.0));
  }
}

// --- round functions ---

TEST(RoundFunction, RuleRoundDelegatesToRule) {
  const auto fn = make_round_function("MEAN");
  AggregationContext ctx;
  ctx.n = 3;
  ctx.t = 0;
  const Vector out = fn->step({{0.0}, {3.0}, {6.0}}, {100.0}, ctx);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_EQ(fn->name(), "MEAN");
}

TEST(RoundFunction, NullRuleRejected) {
  EXPECT_THROW(RuleRound(nullptr), std::invalid_argument);
}

TEST(RoundFunction, StickyMdGeomPrefersSubsetNearCurrent) {
  // Two tied clusters; sticky tie-breaking keeps the node at its own camp.
  const auto fn = make_round_function("MD-GEOM-STICKY");
  AggregationContext ctx;
  ctx.n = 6;
  ctx.t = 3;  // keep = 3: both clusters are tied minimum-diameter sets
  const VectorList received{{0.0}, {0.1}, {0.2}, {10.0}, {10.1}, {10.2}};
  const Vector near_zero = fn->step(received, {0.1}, ctx);
  const Vector near_ten = fn->step(received, {10.1}, ctx);
  EXPECT_LT(near_zero[0], 1.0);
  EXPECT_GT(near_ten[0], 9.0);
}

TEST(RoundFunction, StickyMdGeomRejectsTooFewVectors) {
  const auto fn = make_round_function("MD-GEOM-STICKY");
  AggregationContext ctx;
  ctx.n = 5;
  ctx.t = 1;
  EXPECT_THROW(fn->step({{0.0}}, {0.0}, ctx), std::invalid_argument);
}

// --- property sweep: convergence across n, t, d ---

struct AgreementParam {
  std::size_t n;
  std::size_t t;
  std::size_t d;
};

class AgreementSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AgreementSweepTest, BoxGeomConvergesUnderSignFlip) {
  const int seed = std::get<0>(GetParam());
  const int config_id = std::get<1>(GetParam());
  const AgreementParam params[] = {
      {4, 1, 1}, {7, 2, 2}, {10, 3, 3}, {10, 2, 5}};
  const AgreementParam p = params[config_id];
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  VectorList inputs = random_inputs(rng, p.n, p.d);
  std::vector<std::size_t> byz;
  for (std::size_t i = p.n - p.t; i < p.n; ++i) byz.push_back(i);
  SignFlipAdversary adversary(byz);
  AgreementConfig cfg = box_geom_config(p.n, p.t, 1e-3);
  const auto result = run_approximate_agreement(inputs, adversary, cfg);
  EXPECT_TRUE(result.converged)
      << "n=" << p.n << " t=" << p.t << " d=" << p.d;
  // epsilon-agreement achieved.
  EXPECT_LT(diameter(result.outputs), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AgreementSweepTest,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace bcl
