// Tests for src/linalg: vector kernels, hyperboxes (the geometric object of
// Algorithm 2), order statistics and the trimmed hyperbox of Definition 2.5.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/hyperbox.hpp"
#include "linalg/stats.hpp"
#include "linalg/vector_ops.hpp"
#include "util/rng.hpp"

namespace bcl {
namespace {

// --- vector_ops ---

TEST(VectorOps, AddSubScale) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, -1.0, 0.5};
  EXPECT_EQ(add(a, b), (Vector{5.0, 1.0, 3.5}));
  EXPECT_EQ(sub(a, b), (Vector{-3.0, 3.0, 2.5}));
  EXPECT_EQ(scale(a, 2.0), (Vector{2.0, 4.0, 6.0}));
}

TEST(VectorOps, DimensionMismatchThrows) {
  const Vector a{1.0};
  const Vector b{1.0, 2.0};
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(sub(a, b), std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(distance(a, b), std::invalid_argument);
}

TEST(VectorOps, AxpyAccumulates) {
  Vector y{1.0, 1.0};
  axpy(y, 2.0, Vector{3.0, -1.0});
  EXPECT_EQ(y, (Vector{7.0, -1.0}));
}

TEST(VectorOps, DotAndNorms) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2_squared(a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(VectorOps, DistanceIsSymmetricMetric) {
  const Vector a{0.0, 0.0};
  const Vector b{3.0, 4.0};
  const Vector c{6.0, 8.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance(b, a), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
  EXPECT_LE(distance(a, c), distance(a, b) + distance(b, c) + 1e-12);
}

TEST(VectorOps, MeanMatchesDefinition21) {
  const VectorList vs{{1.0, 0.0}, {3.0, 2.0}, {2.0, 4.0}};
  EXPECT_EQ(mean(vs), (Vector{2.0, 2.0}));
}

TEST(VectorOps, MeanOfEmptyThrows) {
  EXPECT_THROW(mean(VectorList{}), std::invalid_argument);
}

TEST(VectorOps, DiameterOfPointSetIsMaxPairwise) {
  const VectorList vs{{0.0, 0.0}, {1.0, 0.0}, {0.0, 2.0}};
  EXPECT_DOUBLE_EQ(diameter(vs), std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(diameter({{1.0, 1.0}}), 0.0);
}

TEST(VectorOps, UnitVectorAndConstant) {
  EXPECT_EQ(unit(3, 1, 2.5), (Vector{0.0, 2.5, 0.0}));
  EXPECT_EQ(constant(2, 7.0), (Vector{7.0, 7.0}));
  EXPECT_EQ(zeros(2), (Vector{0.0, 0.0}));
  EXPECT_THROW(unit(2, 5), std::invalid_argument);
}

TEST(VectorOps, ApproxEqualTolerance) {
  EXPECT_TRUE(approx_equal({1.0, 2.0}, {1.0 + 1e-10, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal({1.0, 2.0}, {1.1, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal({1.0}, {1.0, 2.0}, 1.0));
}

TEST(VectorOps, CheckSameDimensionValidates) {
  EXPECT_EQ(check_same_dimension({{1.0, 2.0}, {3.0, 4.0}}), 2u);
  EXPECT_THROW(check_same_dimension({{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(check_same_dimension({{1.0}}, 3), std::invalid_argument);
}

// --- Hyperbox ---

TEST(Hyperbox, ConstructionValidatesCorners) {
  EXPECT_NO_THROW(Hyperbox({0.0, 0.0}, {1.0, 1.0}));
  EXPECT_THROW(Hyperbox({0.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Hyperbox({2.0}, {1.0}), std::invalid_argument);
}

TEST(Hyperbox, BoundingBoxOfPoints) {
  const Hyperbox box =
      Hyperbox::bounding({{0.0, 5.0}, {2.0, 1.0}, {-1.0, 3.0}});
  EXPECT_EQ(box.lo(), (Vector{-1.0, 1.0}));
  EXPECT_EQ(box.hi(), (Vector{2.0, 5.0}));
}

TEST(Hyperbox, BoundingOfEmptyThrows) {
  EXPECT_THROW(Hyperbox::bounding({}), std::invalid_argument);
}

TEST(Hyperbox, ContainsPointAndBox) {
  const Hyperbox box({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(box.contains({1.0, 1.0}));
  EXPECT_TRUE(box.contains({0.0, 2.0}));  // boundary closed
  EXPECT_FALSE(box.contains({2.1, 1.0}));
  EXPECT_TRUE(box.contains({2.05, 1.0}, 0.1));
  EXPECT_TRUE(box.contains_box(Hyperbox({0.5, 0.5}, {1.5, 1.5})));
  EXPECT_FALSE(box.contains_box(Hyperbox({0.5, 0.5}, {3.0, 1.5})));
}

TEST(Hyperbox, MidpointDefinition36) {
  const Hyperbox box({0.0, -2.0}, {4.0, 2.0});
  EXPECT_EQ(box.midpoint(), (Vector{2.0, 0.0}));
}

TEST(Hyperbox, MaxEdgeDefinition37AndDiagonal) {
  const Hyperbox box({0.0, 0.0, 0.0}, {1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(box.max_edge(), 3.0);
  EXPECT_DOUBLE_EQ(box.diagonal(), std::sqrt(1.0 + 9.0 + 4.0));
  EXPECT_DOUBLE_EQ(Hyperbox::point({5.0, 5.0}).max_edge(), 0.0);
}

TEST(Hyperbox, IntersectionOfOverlapping) {
  const auto inter = Hyperbox::intersect(Hyperbox({0.0, 0.0}, {2.0, 2.0}),
                                         Hyperbox({1.0, -1.0}, {3.0, 1.0}));
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(inter->lo(), (Vector{1.0, 0.0}));
  EXPECT_EQ(inter->hi(), (Vector{2.0, 1.0}));
}

TEST(Hyperbox, IntersectionEmptyWhenDisjoint) {
  EXPECT_FALSE(Hyperbox::intersect(Hyperbox({0.0}, {1.0}),
                                   Hyperbox({2.0}, {3.0}))
                   .has_value());
}

TEST(Hyperbox, IntersectionAtSharedBoundaryIsDegenerate) {
  const auto inter =
      Hyperbox::intersect(Hyperbox({0.0}, {1.0}), Hyperbox({1.0}, {2.0}));
  ASSERT_TRUE(inter.has_value());
  EXPECT_DOUBLE_EQ(inter->lo()[0], 1.0);
  EXPECT_DOUBLE_EQ(inter->hi()[0], 1.0);
}

TEST(Hyperbox, MergeContainsBoth) {
  const Hyperbox a({0.0, 0.0}, {1.0, 1.0});
  const Hyperbox b({2.0, -1.0}, {3.0, 0.5});
  const Hyperbox m = Hyperbox::merge(a, b);
  EXPECT_TRUE(m.contains_box(a));
  EXPECT_TRUE(m.contains_box(b));
}

TEST(Hyperbox, InflatedGrowsSymmetrically) {
  const Hyperbox box({0.0}, {1.0});
  const Hyperbox big = box.inflated(0.5);
  EXPECT_DOUBLE_EQ(big.lo()[0], -0.5);
  EXPECT_DOUBLE_EQ(big.hi()[0], 1.5);
}

TEST(Hyperbox, IntersectDimensionMismatchThrows) {
  EXPECT_THROW(
      Hyperbox::intersect(Hyperbox({0.0}, {1.0}),
                          Hyperbox({0.0, 0.0}, {1.0, 1.0})),
      std::invalid_argument);
}

// --- stats ---

TEST(Stats, KthSmallest) {
  EXPECT_DOUBLE_EQ(kth_smallest({5.0, 1.0, 3.0}, 0), 1.0);
  EXPECT_DOUBLE_EQ(kth_smallest({5.0, 1.0, 3.0}, 2), 5.0);
  EXPECT_THROW(kth_smallest({1.0}, 1), std::invalid_argument);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_THROW(median({}), std::invalid_argument);
}

TEST(Stats, TrimmedMeanDropsExtremes) {
  // Trim one from each side of {0, 1, 2, 3, 100} -> mean(1, 2, 3) = 2.
  EXPECT_DOUBLE_EQ(trimmed_mean({0.0, 1.0, 2.0, 3.0, 100.0}, 1), 2.0);
  EXPECT_THROW(trimmed_mean({1.0, 2.0}, 1), std::invalid_argument);
}

TEST(Stats, CoordinatewiseMedianIgnoresOutlierPerCoordinate) {
  const VectorList vs{{0.0, 0.0}, {1.0, 1.0}, {100.0, -100.0}};
  EXPECT_EQ(coordinatewise_median(vs), (Vector{1.0, 0.0}));
}

TEST(Stats, CoordinatewiseTrimmedMean) {
  const VectorList vs{{0.0}, {1.0}, {2.0}, {3.0}, {1000.0}};
  EXPECT_EQ(coordinatewise_trimmed_mean(vs, 1), (Vector{2.0}));
}

TEST(Stats, TrimmedHyperboxMatchesDefinition25) {
  // m = 5 received, keep = n - t = 4 -> drop 1 per side:
  // sorted {0,1,2,3,10} -> [1, 3].
  const VectorList vs{{3.0}, {0.0}, {10.0}, {1.0}, {2.0}};
  const Hyperbox th = trimmed_hyperbox(vs, 4);
  EXPECT_DOUBLE_EQ(th.lo()[0], 1.0);
  EXPECT_DOUBLE_EQ(th.hi()[0], 3.0);
}

TEST(Stats, TrimmedHyperboxNoTrimWhenAllKept) {
  const VectorList vs{{1.0, 5.0}, {3.0, 4.0}};
  const Hyperbox th = trimmed_hyperbox(vs, 2);
  EXPECT_EQ(th.lo(), (Vector{1.0, 4.0}));
  EXPECT_EQ(th.hi(), (Vector{3.0, 5.0}));
}

TEST(Stats, TrimmedHyperboxPerCoordinateIndependence) {
  // The trimming happens per coordinate: an outlier in x only affects x.
  const VectorList vs{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {100.0, 3.0}};
  const Hyperbox th = trimmed_hyperbox(vs, 3);
  EXPECT_DOUBLE_EQ(th.hi()[0], 2.0);   // 100 trimmed
  EXPECT_DOUBLE_EQ(th.hi()[1], 2.0);   // 3 trimmed (largest in y)
  EXPECT_DOUBLE_EQ(th.lo()[0], 1.0);
  EXPECT_DOUBLE_EQ(th.lo()[1], 1.0);
}

TEST(Stats, TrimmedHyperboxRejectsOverTrimming) {
  const VectorList vs{{0.0}, {1.0}, {2.0}, {3.0}};
  // keep = 2, drop = 2 per side -> lower index 2 > upper index 1: invalid.
  EXPECT_THROW(trimmed_hyperbox(vs, 2), std::invalid_argument);
  EXPECT_THROW(trimmed_hyperbox(vs, 0), std::invalid_argument);
  EXPECT_THROW(trimmed_hyperbox(vs, 5), std::invalid_argument);
}

TEST(Stats, MeanStd) {
  const auto ms = mean_std({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.std, 2.0);
  EXPECT_DOUBLE_EQ(mean_std({}).mean, 0.0);
}

// --- property sweeps ---

class HyperboxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HyperboxPropertyTest, MidpointInsideAndEdgesConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t d = 1 + rng.uniform_u64(8);
  VectorList points;
  for (int i = 0; i < 12; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-10.0, 10.0);
    points.push_back(p);
  }
  const Hyperbox box = Hyperbox::bounding(points);
  EXPECT_TRUE(box.contains(box.midpoint(), 1e-12));
  for (const auto& p : points) EXPECT_TRUE(box.contains(p, 1e-12));
  EXPECT_LE(box.max_edge(), box.diagonal() + 1e-12);
  EXPECT_LE(box.diagonal(),
            std::sqrt(static_cast<double>(d)) * box.max_edge() + 1e-12);
}

TEST_P(HyperboxPropertyTest, IntersectionIsSubsetOfBoth) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t d = 1 + rng.uniform_u64(5);
  auto random_box = [&] {
    Vector lo(d);
    Vector hi(d);
    for (std::size_t k = 0; k < d; ++k) {
      const double a = rng.uniform(-5.0, 5.0);
      const double b = rng.uniform(-5.0, 5.0);
      lo[k] = std::min(a, b);
      hi[k] = std::max(a, b);
    }
    return Hyperbox(lo, hi);
  };
  const Hyperbox a = random_box();
  const Hyperbox b = random_box();
  const auto inter = Hyperbox::intersect(a, b);
  if (inter) {
    EXPECT_TRUE(a.contains_box(*inter, 1e-12));
    EXPECT_TRUE(b.contains_box(*inter, 1e-12));
  } else {
    // Disjoint in at least one coordinate.
    bool found_gap = false;
    for (std::size_t k = 0; k < d; ++k) {
      if (a.hi()[k] < b.lo()[k] || b.hi()[k] < a.lo()[k]) found_gap = true;
    }
    EXPECT_TRUE(found_gap);
  }
}

TEST_P(HyperboxPropertyTest, TrimmedHyperboxShrinksWithMoreTrimming) {
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t d = 1 + rng.uniform_u64(4);
  VectorList points;
  for (int i = 0; i < 9; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-3.0, 3.0);
    points.push_back(p);
  }
  // keep = 8 trims 1/side; keep = 7 trims 2/side; nested containment.
  const Hyperbox outer = trimmed_hyperbox(points, 8);
  const Hyperbox inner = trimmed_hyperbox(points, 7);
  EXPECT_TRUE(outer.contains_box(inner, 1e-12));
  EXPECT_TRUE(Hyperbox::bounding(points).contains_box(outer, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperboxPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace bcl
