// Tests for src/faults and the liveness plumbing built on it: the
// faults=/stale= grammars (strict parsing, round-trips, rejection menus),
// the FaultPlan expansion (determinism, the cap invariant, per-family
// semantics), RNG stream isolation across the fault/message/codec streams,
// EventNetwork termination and degraded-round accounting under churn, the
// elastic centralized trainer, and the faults=none bitwise-equality
// contract.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "aggregation/registry.hpp"
#include "attacks/registry.hpp"
#include "compression/codec.hpp"
#include "experiments/runner.hpp"
#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "faults/fault_plan.hpp"
#include "faults/staleness.hpp"
#include "learning/centralized.hpp"
#include "learning/decentralized.hpp"
#include "ml/architectures.hpp"
#include "network/adversary.hpp"
#include "network/delay_model.hpp"
#include "network/event_network.hpp"
#include "util/rng.hpp"

namespace bcl {
namespace {

template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return {};
}

// --- faults= grammar -------------------------------------------------------

TEST(FaultGrammar, DefaultIsNone) {
  const FaultConfig config = FaultConfig::parse("none");
  EXPECT_FALSE(config.any());
  EXPECT_EQ(config.to_string(), "none");
  EXPECT_EQ(config, FaultConfig{});
}

TEST(FaultGrammar, ParseToStringRoundTripsEveryFamily) {
  for (const char* text :
       {"none", "crash:at=3", "crash:at=2,frac=0.5",
        "crash-recover:mttf=5,mttr=2", "crash-recover:mttf=8,frac=0.7,cap=0.4",
        "straggler:factor=3,frac=0.5",
        "churn:leave=0.2,join=0.5,burst=2,p01=0.2,p10=0.6,cap=0.3"}) {
    const FaultConfig config = FaultConfig::parse(text);
    EXPECT_EQ(FaultConfig::parse(config.to_string()), config)
        << "round trip failed for '" << text << "'";
  }
}

TEST(FaultGrammar, UnknownFamilyListsTheMenu) {
  const std::string message =
      error_message([] { FaultConfig::parse("meteor"); });
  EXPECT_NE(message.find("valid"), std::string::npos) << message;
  EXPECT_NE(message.find("churn"), std::string::npos) << message;
  EXPECT_NE(message.find("crash-recover"), std::string::npos) << message;
}

TEST(FaultGrammar, UnknownKeyListsTheFamilyKeys) {
  const std::string message =
      error_message([] { FaultConfig::parse("churn:rate=0.5"); });
  EXPECT_NE(message.find("leave"), std::string::npos) << message;
}

TEST(FaultGrammar, RejectsZeroAndNegativeRates) {
  EXPECT_THROW(FaultConfig::parse("crash-recover:mttf=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultConfig::parse("crash-recover:mttr=-1"),
               std::invalid_argument);
  EXPECT_THROW(FaultConfig::parse("crash:frac=0"), std::invalid_argument);
  EXPECT_THROW(FaultConfig::parse("crash:frac=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultConfig::parse("churn:leave=0"), std::invalid_argument);
  EXPECT_THROW(FaultConfig::parse("churn:p01=2"), std::invalid_argument);
  EXPECT_THROW(FaultConfig::parse("churn:cap=0"), std::invalid_argument);
  EXPECT_THROW(FaultConfig::parse("straggler:factor=0.5"),
               std::invalid_argument);
}

TEST(FaultGrammar, TableAndNamesAgree) {
  const auto names = all_fault_names();
  EXPECT_EQ(names.size(), fault_parameter_table().size());
  for (const auto& [family, keys] : fault_parameter_table()) {
    (void)keys;
    EXPECT_NO_THROW(FaultConfig::parse(family));
  }
}

// --- stale= grammar --------------------------------------------------------

TEST(StaleGrammar, ParsesAndRoundTrips) {
  EXPECT_FALSE(StaleConfig::parse("none").enabled());
  const StaleConfig tau2 = StaleConfig::parse("2");
  EXPECT_TRUE(tau2.enabled());
  EXPECT_EQ(tau2.tau, 2u);
  EXPECT_DOUBLE_EQ(tau2.decay, 1.0);
  const StaleConfig full = StaleConfig::parse("3,decay=0.5,quorum=0.6");
  EXPECT_EQ(full.tau, 3u);
  EXPECT_DOUBLE_EQ(full.decay, 0.5);
  EXPECT_DOUBLE_EQ(full.quorum, 0.6);
  for (const char* text : {"none", "1", "2,decay=0.5", "4,quorum=0.75"}) {
    const StaleConfig config = StaleConfig::parse(text);
    EXPECT_EQ(StaleConfig::parse(config.to_string()), config)
        << "round trip failed for '" << text << "'";
  }
}

TEST(StaleGrammar, RejectsZeroTauAndBadKeys) {
  const std::string message = error_message([] { StaleConfig::parse("0"); });
  EXPECT_NE(message.find("none"), std::string::npos) << message;
  EXPECT_THROW(StaleConfig::parse("abc"), std::invalid_argument);
  EXPECT_THROW(StaleConfig::parse("2,decay=0"), std::invalid_argument);
  EXPECT_THROW(StaleConfig::parse("2,decay=1.5"), std::invalid_argument);
  EXPECT_THROW(StaleConfig::parse("2,quorum=1.5"), std::invalid_argument);
  EXPECT_THROW(StaleConfig::parse("2,bogus=1"), std::invalid_argument);
}

// --- FaultPlan expansion ---------------------------------------------------

TEST(FaultPlan, EmptyPlanKeepsEveryoneUp) {
  const FaultPlan plan(FaultConfig{}, 8, 10, 3);
  EXPECT_FALSE(plan.any());
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(plan.live_count(r), 8u);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(plan.alive(i, r));
  }
  EXPECT_EQ(plan.max_down(), 0u);
  EXPECT_EQ(plan.epochs(), 1u);
}

TEST(FaultPlan, DeterministicAcrossConstructions) {
  const FaultConfig config =
      FaultConfig::parse("churn:leave=0.3,join=0.4,cap=0.4");
  const FaultPlan a(config, 12, 20, 9);
  const FaultPlan b(config, 12, 20, 9);
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_EQ(a.live_count(r), b.live_count(r));
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_EQ(a.alive(i, r), b.alive(i, r)) << "node " << i << " round "
                                              << r;
    }
  }
  // A different seed reshuffles the schedule (statistically certain over
  // 240 cells at these rates).
  const FaultPlan c(config, 12, 20, 10);
  bool differs = false;
  for (std::size_t r = 0; r < 20 && !differs; ++r) {
    for (std::size_t i = 0; i < 12; ++i) {
      if (a.alive(i, r) != c.alive(i, r)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, CapBoundsSimultaneousDowntime) {
  // Aggressive churn against a 30% cap: the invariant is structural, not
  // statistical — no round may have more than floor(0.3 * 10) = 3 down.
  const FaultConfig config =
      FaultConfig::parse("churn:leave=0.9,join=0.1,cap=0.3");
  const FaultPlan plan(config, 10, 30, 17);
  EXPECT_LE(plan.max_down(), 3u);
  for (std::size_t r = 0; r < 30; ++r) {
    EXPECT_GE(plan.live_count(r), 7u);
    EXPECT_GE(plan.live_count(r), 1u);
  }
}

TEST(FaultPlan, CrashFamilyIsFailStop) {
  const FaultConfig config = FaultConfig::parse("crash:at=3,frac=0.4");
  const FaultPlan plan(config, 10, 8, 5);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(plan.live_count(r), 10u);
  for (std::size_t r = 3; r < 8; ++r) EXPECT_EQ(plan.live_count(r), 6u);
  // Fail-stop: whoever is down at round 3 stays down.
  for (std::size_t i = 0; i < 10; ++i) {
    if (!plan.alive(i, 3)) {
      for (std::size_t r = 4; r < 8; ++r) EXPECT_FALSE(plan.alive(i, r));
    }
  }
  EXPECT_EQ(plan.max_down(), 4u);
  EXPECT_EQ(plan.epochs(), 2u);
  EXPECT_EQ(plan.transitions(3).crashes, 4u);
  EXPECT_EQ(plan.transitions(3).recoveries, 0u);
}

TEST(FaultPlan, TransitionsBalanceLiveCounts) {
  const FaultConfig config =
      FaultConfig::parse("crash-recover:mttf=3,mttr=2,frac=0.8,cap=0.4");
  const FaultPlan plan(config, 10, 40, 23);
  std::size_t recoveries = 0;
  for (std::size_t r = 1; r < 40; ++r) {
    const auto& t = plan.transitions(r);
    EXPECT_EQ(plan.live_count(r), plan.live_count(r - 1) - t.crashes +
                                      t.recoveries + t.joins)
        << "round " << r;
    recoveries += t.recoveries + t.joins;
  }
  // Over 40 rounds at mttr=2 the cohort must come back at least once.
  EXPECT_GT(recoveries, 0u);
  EXPECT_GT(plan.epochs(), 1u);
}

TEST(FaultPlan, StragglerSlowsWithoutKilling) {
  const FaultConfig config =
      FaultConfig::parse("straggler:factor=4,frac=0.5");
  const FaultPlan plan(config, 10, 10, 7);
  std::size_t slowed = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(plan.slowdown(i) == 1.0 || plan.slowdown(i) == 4.0);
    if (plan.slowdown(i) == 4.0) ++slowed;
  }
  EXPECT_EQ(slowed, 5u);  // ceil(0.5 * 10)
  for (std::size_t r = 0; r < 10; ++r) EXPECT_EQ(plan.live_count(r), 10u);
  EXPECT_EQ(plan.max_down(), 0u);
}

TEST(FaultPlan, RoundsBeyondHorizonFreeze) {
  const FaultConfig config = FaultConfig::parse("crash:at=2,frac=0.3");
  const FaultPlan plan(config, 10, 5, 1);
  EXPECT_EQ(plan.live_count(100), plan.live_count(4));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(plan.alive(i, 100), plan.alive(i, 4));
  }
}

// --- RNG stream isolation --------------------------------------------------

TEST(RngStreams, FaultMessageCodecStreamsNeverCollide) {
  // The fault, delivery, and codec streams are all splitmix64 chains off
  // the same root seed, distinguished only by their salts.  A collision
  // would let a fault schedule perturb sampled latencies (or codec draws)
  // and break the faults=none bitwise contract, so the first outputs of
  // every stream over a key grid must be pairwise distinct — across
  // streams as well as within each one.
  std::set<std::uint64_t> seen;
  std::size_t draws = 0;
  for (std::uint64_t seed : {1ull, 99ull, 0xDEADBEEFull}) {
    for (std::size_t node = 0; node < 10; ++node) {
      for (std::size_t round = 0; round < 10; ++round) {
        seen.insert(fault_stream(seed, node, round).next_u64());
        seen.insert(codec_stream(seed, node, round).next_u64());
        seen.insert(message_stream(seed, node, node + 1, round).next_u64());
        draws += 3;
      }
    }
  }
  EXPECT_EQ(seen.size(), draws);
}

TEST(RngStreams, FaultStreamIsDeterministicPerKey) {
  EXPECT_EQ(fault_stream(7, 3, 5).next_u64(),
            fault_stream(7, 3, 5).next_u64());
  EXPECT_NE(fault_stream(7, 3, 5).next_u64(),
            fault_stream(7, 5, 3).next_u64());
  EXPECT_NE(fault_stream(7, 3, 5).next_u64(),
            fault_stream(8, 3, 5).next_u64());
}

// --- EventNetwork liveness -------------------------------------------------

/// Minimal recorder fleet (mirrors event_network_test's).
class CountingProcess final : public HonestProcess {
 public:
  explicit CountingProcess(std::size_t id) : id_(id) {}
  Vector outgoing(std::size_t /*round*/) const override {
    return {static_cast<double>(id_)};
  }
  void receive(std::size_t /*round*/,
               std::vector<Message>&& inbox) override {
    received_ += inbox.size();
  }
  std::size_t received() const { return received_; }

 private:
  std::size_t id_;
  std::size_t received_ = 0;
};

TEST(EventNetworkFaults, ChurnRoundsTerminateWithAccountedDegradation) {
  const std::size_t n = 6;
  const std::size_t rounds = 12;
  const FaultConfig config =
      FaultConfig::parse("churn:leave=0.5,join=0.3,cap=0.5");
  const FaultPlan plan(config, n, rounds, 21);

  std::vector<std::unique_ptr<CountingProcess>> owned;
  std::vector<HonestProcess*> processes;
  for (std::size_t i = 0; i < n; ++i) {
    owned.push_back(std::make_unique<CountingProcess>(i));
    processes.push_back(owned.back().get());
  }
  NoAdversary adversary;
  EventNetworkConfig net_config;
  net_config.quorum = n - 1;
  net_config.timeout = -1.0;  // no timeout: liveness must come from the
                              // membership-aware quorum alone
  net_config.faults = &plan;
  EventNetwork net(processes, adversary, net_config);
  net.run(rounds);  // must terminate even with up to half the nodes down

  const NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.rounds, rounds);
  std::size_t expected_degraded = 0;
  std::size_t expected_crashes = 0;
  std::size_t expected_joins = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    if (plan.live_count(r) < n - 1) ++expected_degraded;
    expected_crashes += plan.transitions(r).crashes;
    expected_joins += plan.transitions(r).joins + plan.transitions(r).recoveries;
  }
  EXPECT_EQ(stats.rounds_degraded, expected_degraded);
  EXPECT_GT(expected_degraded, 0u);  // the schedule actually bites
  EXPECT_EQ(stats.crashes, expected_crashes);
  EXPECT_EQ(stats.recoveries + stats.joins, expected_joins);
}

TEST(EventNetworkFaults, NullFaultPlanKeepsStatsClean) {
  const std::size_t n = 4;
  std::vector<std::unique_ptr<CountingProcess>> owned;
  std::vector<HonestProcess*> processes;
  for (std::size_t i = 0; i < n; ++i) {
    owned.push_back(std::make_unique<CountingProcess>(i));
    processes.push_back(owned.back().get());
  }
  NoAdversary adversary;
  EventNetworkConfig config;
  config.quorum = n - 1;
  EventNetwork net(processes, adversary, config);
  net.run(3);
  EXPECT_EQ(net.stats().crashes, 0u);
  EXPECT_EQ(net.stats().rounds_degraded, 0u);
  EXPECT_EQ(net.stats().stale_accepted, 0u);
  EXPECT_EQ(net.stats().stale_rejected, 0u);
}

// --- trainers --------------------------------------------------------------

ml::SyntheticSpec tiny_spec(std::uint64_t seed) {
  ml::SyntheticSpec spec = ml::SyntheticSpec::mnist_small(seed);
  spec.height = 8;
  spec.width = 8;
  spec.train_per_class = 40;
  spec.test_per_class = 15;
  return spec;
}

ModelFactory tiny_mlp_factory(std::size_t input_dim) {
  return [input_dim] { return ml::make_mlp(input_dim, 16, 8, 10); };
}

TrainingConfig base_config(const std::string& rule,
                           const std::string& attack) {
  TrainingConfig cfg;
  cfg.num_clients = 10;
  cfg.num_byzantine = 1;
  cfg.rounds = 6;
  cfg.batch_size = 16;
  cfg.rule = make_rule(rule);
  cfg.attack = make_attack(attack);
  cfg.schedule = ml::LearningRateSchedule(0.5, 0.0);
  cfg.heterogeneity = ml::Heterogeneity::Mild;
  cfg.seed = 5;
  return cfg;
}

TEST(CentralizedFaults, FaultsNoneIsBitwiseIdenticalToLockstep) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(11));
  const auto factory = tiny_mlp_factory(data.train.feature_dim());

  TrainingConfig plain = base_config("BOX-GEOM", "sign-flip");
  TrainingConfig gated = base_config("BOX-GEOM", "sign-flip");
  gated.faults = FaultConfig::parse("none");
  gated.stale = StaleConfig::parse("none");

  CentralizedTrainer a(plain, factory, &data.train, &data.test);
  CentralizedTrainer b(gated, factory, &data.train, &data.test);
  const TrainingResult ra = a.run();
  const TrainingResult rb = b.run();

  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t r = 0; r < ra.history.size(); ++r) {
    EXPECT_EQ(ra.history[r].accuracy, rb.history[r].accuracy);
    EXPECT_EQ(ra.history[r].mean_honest_loss,
              rb.history[r].mean_honest_loss);
    EXPECT_EQ(ra.history[r].gradient_diameter,
              rb.history[r].gradient_diameter);
    EXPECT_EQ(ra.history[r].bytes_delivered, rb.history[r].bytes_delivered);
    EXPECT_EQ(rb.history[r].live_clients, 10.0);
    EXPECT_EQ(rb.history[r].degraded, 0.0);
  }
  EXPECT_EQ(ra.final_accuracy, rb.final_accuracy);
}

TEST(CentralizedFaults, ElasticChurnWithStalenessCompletesAndAccounts) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(12));
  const auto factory = tiny_mlp_factory(data.train.feature_dim());

  TrainingConfig cfg = base_config("BOX-GEOM", "stale-strike");
  cfg.rounds = 8;
  cfg.faults = FaultConfig::parse("churn:leave=0.3,join=0.4,cap=0.3");
  cfg.stale = StaleConfig::parse("2,decay=0.5");

  CentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
  const TrainingResult result = trainer.run();
  ASSERT_EQ(result.history.size(), 8u);
  bool saw_downtime = false;
  for (const RoundMetrics& m : result.history) {
    EXPECT_GE(m.live_clients, 7.0);  // cap=0.3 over n=10
    EXPECT_LE(m.live_clients, 10.0);
    if (m.live_clients < 10.0) saw_downtime = true;
    EXPECT_TRUE(std::isfinite(m.accuracy));
    EXPECT_TRUE(std::isfinite(m.mean_honest_loss));
  }
  EXPECT_TRUE(saw_downtime);

  // Determinism: the same config replays the elastic loop bitwise.
  CentralizedTrainer replay(cfg, factory, &data.train, &data.test);
  const TrainingResult again = replay.run();
  ASSERT_EQ(again.history.size(), result.history.size());
  for (std::size_t r = 0; r < result.history.size(); ++r) {
    EXPECT_EQ(result.history[r].accuracy, again.history[r].accuracy);
    EXPECT_EQ(result.history[r].live_clients,
              again.history[r].live_clients);
    EXPECT_EQ(result.history[r].stale_accepted,
              again.history[r].stale_accepted);
    EXPECT_EQ(result.history[r].stale_rejected,
              again.history[r].stale_rejected);
  }
}

TEST(CentralizedFaults, StaleStrikeSubmitsAtMaxStaleness) {
  const auto attack = make_attack("stale-strike:scale=2");
  EXPECT_EQ(attack->name(), "stale-strike");
  EXPECT_EQ(attack->submit_staleness(0, 3), 3u);
  EXPECT_EQ(attack->submit_staleness(5, 1), 1u);
  // Rushing attacks claim zero staleness by default.
  EXPECT_EQ(make_attack("sign-flip")->submit_staleness(0, 3), 0u);
}

TEST(DecentralizedFaults, RejectsStaleConfig) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(13));
  const auto factory = tiny_mlp_factory(data.train.feature_dim());
  TrainingConfig cfg = base_config("BOX-GEOM", "sign-flip");
  cfg.stale = StaleConfig::parse("2");
  EXPECT_THROW(DecentralizedTrainer(cfg, factory, &data.train, &data.test),
               std::invalid_argument);
}

TEST(DecentralizedFaults, CrashRecoverCompletesWithLiveAccounting) {
  const auto data = ml::make_synthetic_dataset(tiny_spec(14));
  const auto factory = tiny_mlp_factory(data.train.feature_dim());
  TrainingConfig cfg = base_config("BOX-GEOM", "sign-flip");
  cfg.rounds = 4;
  cfg.faults = FaultConfig::parse("crash-recover:mttf=3,mttr=2,frac=0.6,cap=0.3");
  DecentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
  const TrainingResult result = trainer.run();
  ASSERT_EQ(result.history.size(), 4u);
  for (const RoundMetrics& m : result.history) {
    EXPECT_GE(m.live_clients, 7.0);
    EXPECT_LE(m.live_clients, 10.0);
    EXPECT_TRUE(std::isfinite(m.accuracy));
  }
}

// --- scenario / sweep surface ----------------------------------------------

TEST(ScenarioFaults, KeysParseValidateAndRoundTrip) {
  using experiments::ScenarioSpec;
  const auto spec = ScenarioSpec::parse(
      "faults=churn:leave=0.2,join=0.5,cap=0.3 stale=2,decay=0.5");
  EXPECT_EQ(spec.faults, "churn:leave=0.2,join=0.5,cap=0.3");
  EXPECT_EQ(spec.stale, "2,decay=0.5");
  EXPECT_EQ(ScenarioSpec::parse(spec.to_string()), spec);
  // Non-default values show in the derived name.
  EXPECT_NE(spec.name().find("churn"), std::string::npos);
  EXPECT_NE(spec.name().find("stale:2"), std::string::npos);
  // Defaults stay out of the name and round-trip too.
  const ScenarioSpec plain;
  EXPECT_EQ(plain.name().find("stale"), std::string::npos);
  EXPECT_EQ(ScenarioSpec::parse(plain.to_string()), plain);
}

TEST(ScenarioFaults, RejectsBadValuesEagerly) {
  using experiments::ScenarioSpec;
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("faults", "meteor"), std::invalid_argument);
  EXPECT_THROW(spec.set("faults", "churn:leave=0"), std::invalid_argument);
  EXPECT_THROW(spec.set("stale", "0"), std::invalid_argument);
  EXPECT_THROW(spec.set("stale", "2,bogus=1"), std::invalid_argument);
  // A failed set leaves the spec untouched.
  EXPECT_EQ(spec.faults, "none");
  EXPECT_EQ(spec.stale, "none");
}

TEST(ScenarioFaults, SweepFaultsAxisExpandsBetweenCompAndRule) {
  experiments::SweepAxes axes;
  axes.faults = {"none", "crash:at=2"};
  axes.rules = {"MEAN", "KRUM"};
  const auto specs = experiments::expand_sweep(axes);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].faults, "none");
  EXPECT_EQ(specs[0].rule, "MEAN");
  EXPECT_EQ(specs[1].rule, "KRUM");
  EXPECT_EQ(specs[2].faults, "crash:at=2");
  EXPECT_EQ(specs[2].rule, "MEAN");
}

TEST(ScenarioFaults, ChurnSweepSerialAndJobsAreBitwiseIdentical) {
  using experiments::ScenarioSpec;
  experiments::SweepAxes axes;
  axes.rules = {"MEAN"};
  axes.attacks = {"sign-flip", "stale-strike"};
  axes.faults = {"churn:leave=0.3,join=0.5,cap=0.3"};
  const auto specs = experiments::expand_sweep(axes, [](ScenarioSpec& spec) {
    spec.set("rounds", "3");
    spec.set("stale", "2");
    spec.set("eval-max", "100");
  });
  ASSERT_EQ(specs.size(), 2u);

  experiments::ScenarioRunner serial;
  const auto serial_out = serial.run_all(specs, {}, 1);
  experiments::ScenarioRunner pooled;
  const auto pooled_out = pooled.run_all(specs, {}, 2);

  ASSERT_EQ(serial_out.size(), pooled_out.size());
  for (std::size_t i = 0; i < serial_out.size(); ++i) {
    EXPECT_EQ(serial_out[i].error, "") << serial_out[i].error;
    EXPECT_EQ(pooled_out[i].error, "") << pooled_out[i].error;
    const auto& a = serial_out[i].result.history;
    const auto& b = pooled_out[i].result.history;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
      EXPECT_EQ(a[r].accuracy, b[r].accuracy);
      EXPECT_EQ(a[r].mean_honest_loss, b[r].mean_honest_loss);
      EXPECT_EQ(a[r].live_clients, b[r].live_clients);
      EXPECT_EQ(a[r].stale_accepted, b[r].stale_accepted);
      EXPECT_EQ(a[r].stale_rejected, b[r].stale_rejected);
      EXPECT_EQ(a[r].degraded, b[r].degraded);
      EXPECT_EQ(a[r].bytes_delivered, b[r].bytes_delivered);
    }
  }
}

}  // namespace
}  // namespace bcl
