// Tests for src/network: synchronous delivery, reliable-broadcast
// (anti-equivocation) structure, adversarial omission/crash behaviour, and
// deterministic parallel execution.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>

#include "network/adversary.hpp"
#include "network/message.hpp"
#include "network/sync_network.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

/// Owned copy of a delivered message: payloads are views valid only during
/// receive(), so a recorder that keeps them must materialize them.
struct Recorded {
  std::size_t sender = 0;
  Vector payload;
};

/// Records everything it receives; broadcasts a constant tagged by id.
class RecordingProcess final : public HonestProcess {
 public:
  explicit RecordingProcess(std::size_t id) : id_(id) {}

  Vector outgoing(std::size_t /*round*/) const override {
    return {static_cast<double>(id_)};
  }

  void receive(std::size_t round, std::vector<Message>&& inbox) override {
    auto& recorded = inboxes_[round];
    recorded.reserve(inbox.size());
    for (const Message& msg : inbox) {
      recorded.push_back({msg.sender, msg.payload.to_vector()});
    }
  }

  const std::map<std::size_t, std::vector<Recorded>>& inboxes() const {
    return inboxes_;
  }

 private:
  std::size_t id_;
  std::map<std::size_t, std::vector<Recorded>> inboxes_;
};

std::vector<HonestProcess*> as_pointers(
    std::vector<std::unique_ptr<RecordingProcess>>& owned) {
  std::vector<HonestProcess*> out;
  for (auto& p : owned) out.push_back(p.get());
  return out;
}

TEST(SyncNetwork, AllToAllDeliveryWithoutFaults) {
  std::vector<std::unique_ptr<RecordingProcess>> procs;
  for (std::size_t i = 0; i < 4; ++i) {
    procs.push_back(std::make_unique<RecordingProcess>(i));
  }
  NoAdversary adversary;
  SyncNetwork net(as_pointers(procs), adversary);
  net.run_round();
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& inbox = procs[i]->inboxes().at(0);
    ASSERT_EQ(inbox.size(), 4u);
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(inbox[s].sender, s);
      EXPECT_DOUBLE_EQ(inbox[s].payload[0], static_cast<double>(s));
    }
  }
  EXPECT_EQ(net.stats().messages_delivered, 16u);
  EXPECT_EQ(net.stats().messages_omitted, 0u);
}

TEST(SyncNetwork, InboxSortedBySenderId) {
  std::vector<std::unique_ptr<RecordingProcess>> procs;
  for (std::size_t i = 0; i < 5; ++i) {
    procs.push_back(std::make_unique<RecordingProcess>(i));
  }
  NoAdversary adversary;
  SyncNetwork net(as_pointers(procs), adversary);
  net.run(3);
  for (std::size_t r = 0; r < 3; ++r) {
    const auto& inbox = procs[2]->inboxes().at(r);
    for (std::size_t i = 1; i < inbox.size(); ++i) {
      EXPECT_LT(inbox[i - 1].sender, inbox[i].sender);
    }
  }
}

TEST(SyncNetwork, ByzantineIdMustNotHaveProcess) {
  std::vector<std::unique_ptr<RecordingProcess>> procs;
  procs.push_back(std::make_unique<RecordingProcess>(0));
  procs.push_back(std::make_unique<RecordingProcess>(1));
  FixedVectorAdversary adversary({1}, {9.0});
  EXPECT_THROW(SyncNetwork(as_pointers(procs), adversary),
               std::invalid_argument);
}

TEST(SyncNetwork, HonestIdRequiresProcess) {
  std::vector<HonestProcess*> procs(2, nullptr);
  NoAdversary adversary;
  EXPECT_THROW(SyncNetwork(procs, adversary), std::invalid_argument);
}

TEST(SyncNetwork, FixedVectorAdversaryInjectsValue) {
  std::vector<std::unique_ptr<RecordingProcess>> procs;
  procs.push_back(std::make_unique<RecordingProcess>(0));
  procs.push_back(std::make_unique<RecordingProcess>(1));
  auto pointers = as_pointers(procs);
  pointers.push_back(nullptr);  // id 2 is Byzantine
  FixedVectorAdversary adversary({2}, {42.0});
  SyncNetwork net(pointers, adversary);
  net.run_round();
  const auto& inbox = procs[0]->inboxes().at(0);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_DOUBLE_EQ(inbox[2].payload[0], 42.0);
}

TEST(SyncNetwork, CrashAdversarySilentFromCrashRound) {
  std::vector<std::unique_ptr<RecordingProcess>> procs;
  procs.push_back(std::make_unique<RecordingProcess>(0));
  procs.push_back(std::make_unique<RecordingProcess>(1));
  auto pointers = as_pointers(procs);
  pointers.push_back(nullptr);
  CrashAdversary adversary({2}, /*crash_round=*/1, {{7.0}});
  SyncNetwork net(pointers, adversary);
  net.run(2);
  EXPECT_EQ(procs[0]->inboxes().at(0).size(), 3u);  // pre-crash: delivers
  EXPECT_EQ(procs[0]->inboxes().at(1).size(), 2u);  // post-crash: silent
  EXPECT_EQ(net.stats().broadcasts_skipped, 1u);
}

TEST(SyncNetwork, SelectiveOmissionRespectsAdversary) {
  // SplitWorld: byz id 4 supports camp {0,1}, byz id 5 supports camp {2,3}.
  std::vector<std::unique_ptr<RecordingProcess>> procs;
  for (std::size_t i = 0; i < 4; ++i) {
    procs.push_back(std::make_unique<RecordingProcess>(i));
  }
  auto pointers = as_pointers(procs);
  pointers.push_back(nullptr);
  pointers.push_back(nullptr);
  SplitWorldAdversary adversary({0, 1}, {2, 3}, {4}, {5});
  SyncNetwork net(pointers, adversary);
  net.run_round();
  // Camp 1 node receives byz 4 (camp-1 supporter) but not byz 5.
  const auto& inbox0 = procs[0]->inboxes().at(0);
  bool saw4 = false;
  bool saw5 = false;
  for (const auto& msg : inbox0) {
    if (msg.sender == 4) saw4 = true;
    if (msg.sender == 5) saw5 = true;
  }
  EXPECT_TRUE(saw4);
  EXPECT_FALSE(saw5);
  // And byz 4 echoes camp 1's current value (node 0 broadcasts {0.0}).
  for (const auto& msg : inbox0) {
    if (msg.sender == 4) EXPECT_DOUBLE_EQ(msg.payload[0], 0.0);
  }
  EXPECT_GT(net.stats().messages_omitted, 0u);
}

TEST(SyncNetwork, ReliableBroadcastNoEquivocation) {
  // Structural guarantee: all receivers of a Byzantine message in a round
  // see the identical payload.
  std::vector<std::unique_ptr<RecordingProcess>> procs;
  for (std::size_t i = 0; i < 3; ++i) {
    procs.push_back(std::make_unique<RecordingProcess>(i));
  }
  auto pointers = as_pointers(procs);
  pointers.push_back(nullptr);
  FixedVectorAdversary adversary({3}, {5.5});
  SyncNetwork net(pointers, adversary);
  net.run(4);
  for (std::size_t r = 0; r < 4; ++r) {
    Vector seen;
    for (std::size_t i = 0; i < 3; ++i) {
      for (const auto& msg : procs[i]->inboxes().at(r)) {
        if (msg.sender == 3) {
          if (seen.empty()) {
            seen = msg.payload;
          } else {
            EXPECT_EQ(seen, msg.payload);
          }
        }
      }
    }
  }
}

TEST(SyncNetwork, ParallelDeliveryMatchesSerial) {
  auto build = [](ThreadPool* pool,
                  std::vector<std::unique_ptr<RecordingProcess>>& procs) {
    procs.clear();
    for (std::size_t i = 0; i < 6; ++i) {
      procs.push_back(std::make_unique<RecordingProcess>(i));
    }
    std::vector<HonestProcess*> pointers;
    for (auto& p : procs) pointers.push_back(p.get());
    static NoAdversary adversary;
    SyncNetwork net(pointers, adversary, pool);
    net.run(3);
  };
  std::vector<std::unique_ptr<RecordingProcess>> serial_procs;
  std::vector<std::unique_ptr<RecordingProcess>> parallel_procs;
  ThreadPool pool(4);
  build(nullptr, serial_procs);
  build(&pool, parallel_procs);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t r = 0; r < 3; ++r) {
      const auto& a = serial_procs[i]->inboxes().at(r);
      const auto& b = parallel_procs[i]->inboxes().at(r);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a[k].sender, b[k].sender);
        EXPECT_EQ(a[k].payload, b[k].payload);
      }
    }
  }
}

TEST(Adversary, CountByzantine) {
  FixedVectorAdversary adversary({1, 3, 5}, {0.0});
  EXPECT_EQ(adversary.count_byzantine(6), 3u);
  EXPECT_EQ(adversary.count_byzantine(2), 1u);
}

TEST(Adversary, SignFlipNegatesHonestMean) {
  SignFlipAdversary adversary({2}, 1.0);
  std::vector<std::optional<Vector>> honest{Vector{2.0}, Vector{4.0},
                                            std::nullopt};
  const auto v = adversary.byzantine_value(2, 0, honest);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ((*v)[0], -3.0);
}

TEST(Adversary, PerNodeFixedValuesAndSilence) {
  std::vector<std::optional<Vector>> values(3);
  values[1] = Vector{7.0};
  PerNodeFixedAdversary adversary({1, 2}, values);
  EXPECT_TRUE(adversary.is_byzantine(1));
  EXPECT_TRUE(adversary.is_byzantine(2));
  EXPECT_FALSE(adversary.is_byzantine(0));
  EXPECT_EQ((*adversary.byzantine_value(1, 0, {}))[0], 7.0);
  EXPECT_FALSE(adversary.byzantine_value(2, 0, {}).has_value());
}

TEST(Adversary, CrashRequiresMatchingValues) {
  EXPECT_THROW(CrashAdversary({1, 2}, 0, {{1.0}}), std::invalid_argument);
}

TEST(Message, PayloadsPreserveOrder) {
  const Vector a{1.0};
  const Vector b{3.0};
  std::vector<Message> inbox{{0, PayloadView(a), 8}, {2, PayloadView(b), 8}};
  const VectorList p = payloads(inbox);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[1][0], 3.0);
}

TEST(Message, PayloadsAndBatchMaterializeOwnedCopies) {
  // Payloads are views into engine-owned storage; the extraction helpers
  // are where the one copy happens, so the results must not alias the
  // backing buffer.
  Vector a{1.0, 2.0};
  Vector b{3.0, 4.0};
  std::vector<Message> inbox{{0, PayloadView(a), 16}, {2, PayloadView(b), 16}};
  const VectorList p = payloads(inbox);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NE(p[1].data(), b.data());  // copied, not aliased
  a[0] = 9.0;                        // backing changes after the copy...
  EXPECT_DOUBLE_EQ(p[0][0], 1.0);    // ...the extracted copy does not

  const GradientBatch batch = payload_batch(inbox);
  ASSERT_EQ(batch.rows(), 2u);
  EXPECT_DOUBLE_EQ(batch.row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(batch.row(0)[0], 9.0);  // packed from the live view
}

TEST(Message, PayloadBatchRejectsDimensionMismatch) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0};
  std::vector<Message> inbox{{0, PayloadView(a), 16}, {2, PayloadView(b), 8}};
  EXPECT_THROW(payload_batch(inbox), std::invalid_argument);
}

}  // namespace
}  // namespace bcl
