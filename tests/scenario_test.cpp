// Tests for src/experiments (ScenarioSpec grammar, registries, runner +
// emitters) and the registry error-message contracts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "aggregation/registry.hpp"
#include "attacks/registry.hpp"
#include "compression/registry.hpp"
#include "experiments/emitters.hpp"
#include "experiments/runner.hpp"
#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "faults/fault_plan.hpp"
#include "faults/staleness.hpp"
#include "learning/cohort.hpp"

namespace bcl {
namespace {

using experiments::ModelKind;
using experiments::ScenarioSpec;
using experiments::Topology;

// --- spec grammar ----------------------------------------------------------

TEST(ScenarioSpec, ParsesEveryKey) {
  const auto spec = ScenarioSpec::parse(
      "label=probe rule=KRUM attack=alie:z=2 n=13 f=2 t=3 "
      "topology=decentralized model=cifarnet het=extreme scale=full "
      "rounds=7 batch=4 lr=0.125 subrounds=2 delay=0.25 "
      "comp=topk:frac=0.05 seed=99 eval-max=50");
  EXPECT_EQ(spec.label, "probe");
  EXPECT_EQ(spec.rule, "KRUM");
  EXPECT_EQ(spec.attack, "alie:z=2");
  EXPECT_EQ(spec.clients, 13u);
  EXPECT_EQ(spec.byzantine, 2u);
  EXPECT_EQ(spec.tolerance, 3u);
  EXPECT_EQ(spec.topology, Topology::Decentralized);
  EXPECT_EQ(spec.model, ModelKind::CifarNet);
  EXPECT_EQ(spec.heterogeneity, ml::Heterogeneity::Extreme);
  EXPECT_TRUE(spec.full_scale);
  EXPECT_EQ(spec.rounds, 7u);
  EXPECT_EQ(spec.batch, 4u);
  EXPECT_DOUBLE_EQ(spec.lr, 0.125);
  EXPECT_EQ(spec.subrounds, 2u);
  EXPECT_DOUBLE_EQ(spec.delay, 0.25);
  EXPECT_EQ(spec.comp, "topk:frac=0.05");
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.eval_max, 50u);
}

TEST(ScenarioSpec, ToStringRoundTrips) {
  const auto spec = ScenarioSpec::parse(
      "rule=MD-GEOM attack=mimic:target=1 f=2 topology=decentralized "
      "het=uniform lr=0.05 delay=0.3 subrounds=4 seed=7");
  const ScenarioSpec reparsed = ScenarioSpec::parse(spec.to_string());
  EXPECT_EQ(spec, reparsed);
  EXPECT_EQ(spec.to_string(), reparsed.to_string());
  // Defaults round-trip too.
  EXPECT_EQ(ScenarioSpec{}, ScenarioSpec::parse(ScenarioSpec{}.to_string()));
}

TEST(ScenarioSpec, UnknownKeyListsValidKeys) {
  try {
    ScenarioSpec::parse("rule=MEAN bogus=1");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("bogus"), std::string::npos);
    EXPECT_NE(message.find("topology"), std::string::npos);
    EXPECT_NE(message.find("eval-max"), std::string::npos);
  }
}

TEST(ScenarioSpec, MalformedTokenAndValuesRejected) {
  EXPECT_THROW(ScenarioSpec::parse("KRUM"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("rounds=many"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("rounds=1.5"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("rounds=-2"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("topology=p2p"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("scale=huge"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("model=resnet"), std::invalid_argument);
  // A label with whitespace could never parse back (the grammar is
  // whitespace-separated), so set() rejects it to keep the round-trip.
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("label", "my run"), std::invalid_argument);
}

TEST(ScenarioSpec, DerivedNameReflectsFields) {
  const auto spec = ScenarioSpec::parse(
      "rule=KRUM attack=sign-flip f=2 topology=decentralized het=extreme");
  EXPECT_EQ(spec.name(), "dec/extreme/KRUM/sign-flip/f2");
  EXPECT_EQ(ScenarioSpec::parse("label=x rule=KRUM").name(), "x");
}

TEST(ScenarioSpec, NetKeyRoundTripsAndValidatesEagerly) {
  const auto spec =
      ScenarioSpec::parse("rule=KRUM net=async:delay=exp,mean=5,drop=0.01");
  EXPECT_EQ(spec.net, "async:delay=exp,mean=5,drop=0.01");
  EXPECT_EQ(spec, ScenarioSpec::parse(spec.to_string()));
  // The derived name carries the non-default network model so sweep cells
  // stay distinguishable in tables and artifacts.
  EXPECT_NE(spec.name().find("async:delay=exp"), std::string::npos);
  EXPECT_EQ(ScenarioSpec{}.net, "sync");
  // Malformed NetConfig grammar is rejected at set() time, not at run time.
  EXPECT_THROW(ScenarioSpec::parse("net=async:delay=gamma"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("net=lossy"), std::invalid_argument);
}

// --- grammar fuzz ----------------------------------------------------------

// One malformed input per row plus the substrings its rejection message
// must carry.  The shared contract across every textual grammar in the
// harness (scenario keys, attack/codec registries, faults/stale/cohort
// configs): a rejection names the offending token AND either the valid
// menu or the violated range, so a typo is always one error message away
// from the fix.
struct FuzzCase {
  std::string input;
  std::vector<std::string> expect;
};

void expect_menu_bearing_rejection(
    const char* grammar, const std::function<void(const std::string&)>& parse,
    const std::vector<FuzzCase>& cases) {
  for (const auto& c : cases) {
    try {
      parse(c.input);
      ADD_FAILURE() << grammar << " accepted malformed input '" << c.input
                    << "'";
    } catch (const std::invalid_argument& e) {
      const std::string message = e.what();
      for (const auto& needle : c.expect) {
        EXPECT_NE(message.find(needle), std::string::npos)
            << grammar << " rejected '" << c.input << "' with '" << message
            << "', which does not mention '" << needle << "'";
      }
    }
  }
}

TEST(GrammarFuzz, ScenarioGrammarRejectionsListTheMenu) {
  expect_menu_bearing_rejection(
      "ScenarioSpec::parse",
      [](const std::string& s) { ScenarioSpec::parse(s); },
      {
          // Empty key: '=' at position 0 is a malformed token.
          {"=1", {"malformed token", "key=value", "topology"}},
          // Empty value on an integer key.
          {"rounds=", {"rounds", "non-negative integer"}},
          // Overflow numerics must not wrap silently.
          {"n=999999999999999999999999",
           {"n", "non-negative integer", "999999999999999999999999"}},
          {"lr=1e999999", {"lr", "number"}},
          // Unknown keys list the full key menu (including cohort).
          {"bogus=1", {"bogus", "cohort", "eval-max"}},
          {"cohort", {"malformed token", "key=value"}},
      });
}

TEST(GrammarFuzz, AttackGrammarRejectionsListTheMenu) {
  expect_menu_bearing_rejection(
      "make_attack", [](const std::string& s) { make_attack(s); },
      {
          {"", {"valid:", "sign-flip", "alie"}},
          {"bogus:x=1", {"bogus", "valid:", "sign-flip"}},
          // Empty parameter key and empty parameter value.
          {"sign-flip:=2", {"malformed parameter", "key=value"}},
          {"sign-flip:scale=", {"malformed parameter", "key=value"}},
          {"mimic:target=999999999999999999999999",
           {"target", "non-negative integer"}},
          // Unknown parameter for a known family lists that family's keys.
          {"alie:q=3", {"q", "alie", "valid:"}},
      });
}

TEST(GrammarFuzz, CodecGrammarRejectionsListTheMenu) {
  expect_menu_bearing_rejection(
      "make_codec", [](const std::string& s) { make_codec(s); },
      {
          {"gzip", {"gzip", "valid:", "topk"}},
          {"topk:frac=abc", {"frac", "number"}},
          {"topk:frac=0.5,extra=1", {"extra", "valid:"}},
      });
}

TEST(GrammarFuzz, FaultGrammarRejectionsListTheMenu) {
  expect_menu_bearing_rejection(
      "FaultConfig::parse",
      [](const std::string& s) { FaultConfig::parse(s); },
      {
          {"meteor", {"meteor", "valid:", "churn", "crash-recover"}},
          {"churn:leave=", {"malformed parameter", "key=value"}},
          {"churn:leave=2", {"leave", "(0, 1]"}},
          {"crash:at=1.5", {"at", "non-negative integer"}},
          {"churn:bogus=1", {"bogus", "valid:", "leave"}},
      });
}

TEST(GrammarFuzz, StaleGrammarRejectionsListTheMenu) {
  expect_menu_bearing_rejection(
      "StaleConfig::parse",
      [](const std::string& s) { StaleConfig::parse(s); },
      {
          {"abc", {"tau", "non-negative integer"}},
          {"2,decay=0", {"decay", "(0, 1]"}},
          {"2,bogus=1", {"bogus", "valid:", "decay"}},
      });
}

TEST(GrammarFuzz, CohortGrammarRejectionsListTheMenu) {
  expect_menu_bearing_rejection(
      "CohortConfig::parse",
      [](const std::string& s) { CohortConfig::parse(s); },
      {
          // The fraction itself: zero, above one, and non-numeric.
          {"0", {"frac", "(0, 1]"}},
          {"1.5", {"frac", "(0, 1]"}},
          {"abc", {"frac", "number"}},
          // Parameter tail.
          {"0.5,shards=0", {"shards", ">= 1"}},
          {"0.5,shards=", {"malformed parameter", "key=value"}},
          {"0.5,shards=999999999999999999999999",
           {"shards", "non-negative integer"}},
          {"0.5,bogus=1", {"bogus", "valid:", "shards", "root"}},
          // An unknown root rule surfaces the aggregation registry's own
          // menu (eager validation, like net=/comp= in the spec grammar).
          {"0.5,root=BOGUS", {"BOGUS", "MULTIKRUM-<q>"}},
      });
}

TEST(GrammarFuzz, TrailingCommasAreTolerated) {
  // The comma-separated parameter grammars skip empty tokens, so a
  // trailing comma is not an error — fuzz inputs ending in ',' must parse
  // to the same config as without it.
  EXPECT_EQ(CohortConfig::parse("0.5,").fraction,
            CohortConfig::parse("0.5").fraction);
  EXPECT_EQ(CohortConfig::parse("0.5,shards=2,").shards,
            CohortConfig::parse("0.5,shards=2").shards);
  EXPECT_NO_THROW(FaultConfig::parse("churn:leave=0.2,"));
  EXPECT_NO_THROW(StaleConfig::parse("2,decay=0.5,"));
}

// --- registry error contracts ----------------------------------------------

TEST(Registries, UnknownRuleListsValidNames) {
  try {
    make_rule("BOGUS");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("BOGUS"), std::string::npos);
    for (const auto& name : all_rule_names()) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
    EXPECT_NE(message.find("MULTIKRUM-<q>"), std::string::npos);
  }
}

TEST(Registries, UnknownAttackListsValidNames) {
  try {
    make_attack("bogus");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    for (const auto& name : all_attack_names()) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(Registries, UnknownAttackParameterListsValidKeys) {
  try {
    make_attack("sign-flip:sigma=2");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("sigma"), std::string::npos);
    EXPECT_NE(message.find("scale"), std::string::npos);
  }
  EXPECT_THROW(make_attack("zero:x=1"), std::invalid_argument);
  EXPECT_THROW(make_attack("alie:z="), std::invalid_argument);
  EXPECT_THROW(make_attack("alie:z=abc"), std::invalid_argument);
  // Integer parameters reject fractional values instead of truncating.
  EXPECT_THROW(make_attack("mimic:target=1.9"), std::invalid_argument);
  EXPECT_THROW(make_attack("crash:from=2.7"), std::invalid_argument);
}

TEST(Registries, AttackParameterGrammar) {
  Rng rng(5);
  const Vector own{1.0, -2.0};
  const VectorList honest{{1.0, 0.0}, {3.0, 0.0}};

  EXPECT_EQ(*make_attack("sign-flip:scale=2")->corrupt(own, honest, 0, rng),
            (Vector{-2.0, 4.0}));
  EXPECT_TRUE(
      make_attack("crash:from=3")->corrupt(own, honest, 2, rng).has_value());
  EXPECT_FALSE(
      make_attack("crash:from=3")->corrupt(own, honest, 3, rng).has_value());
  EXPECT_EQ(*make_attack("mimic:target=1")->corrupt(own, honest, 0, rng),
            honest[1]);
  // ipm: -eps * mean(honest) = -0.5 * (2, 0).
  EXPECT_EQ(*make_attack("ipm:eps=0.5")->corrupt(own, honest, 0, rng),
            (Vector{-1.0, 0.0}));
}

// Every registered attack constructs and corrupts a toy round with a
// plausible output (right dimension or silence).
TEST(Registries, EveryAttackConstructsAndCorruptsToyRound) {
  Rng rng(17);
  Vector own{0.5, -1.0, 2.0};
  VectorList honest{{1.0, 0.0, 0.0}, {0.9, 0.1, 0.0}, {1.1, -0.1, 0.1}};
  for (const auto& name : all_attack_names()) {
    const auto attack = make_attack(name);
    ASSERT_NE(attack, nullptr) << name;
    const auto out = attack->corrupt(own, honest, 0, rng);
    if (name == "crash") {
      EXPECT_FALSE(out.has_value()) << name;  // crash:from=0 is silent
      continue;
    }
    ASSERT_TRUE(out.has_value()) << name;
    EXPECT_EQ(out->size(), own.size()) << name;
    for (double x : *out) EXPECT_TRUE(std::isfinite(x)) << name;
  }
}

TEST(Registries, MinMaxStaysWithinHonestDiameter) {
  Rng rng(19);
  const VectorList honest{{1.0, 0.0}, {0.8, 0.2}, {1.2, -0.2}};
  const auto out =
      *make_attack("min-max")->corrupt(honest[0], honest, 0, rng);
  const double budget = diameter(honest);
  for (const auto& g : honest) {
    EXPECT_LE(distance(out, g), budget * (1.0 + 1e-9));
  }
  // ...and is displaced against the mean direction (gamma > 0).
  const Vector mu = mean(honest);
  EXPECT_LT(dot(out, mu), dot(mu, mu));
}

TEST(Registries, PoisonByzantineShardsFlipsOnlyByzantineShards) {
  ml::Dataset data;
  data.num_classes = 10;
  data.channels = data.height = data.width = 1;
  for (std::uint8_t c = 0; c < 10; ++c) {
    data.images.push_back({0.0});
    data.labels.push_back(c);
  }
  const std::vector<std::vector<std::size_t>> shards{
      {0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  ml::Dataset storage;
  // Non-poisoning attack: the original dataset comes back untouched.
  const auto* same = poison_byzantine_shards(*make_attack("sign-flip"), data,
                                             shards, 1, storage);
  EXPECT_EQ(same, &data);
  // label-flip with f=1: only the last shard {7,8,9} is remapped y -> 9-y.
  const auto* poisoned = poison_byzantine_shards(
      *make_attack("label-flip"), data, shards, 1, storage);
  ASSERT_EQ(poisoned, &storage);
  EXPECT_EQ(poisoned->labels[7], 2);
  EXPECT_EQ(poisoned->labels[9], 0);
  EXPECT_EQ(poisoned->labels[0], 0);  // honest shard untouched
  EXPECT_EQ(poisoned->labels[4], 4);
  EXPECT_EQ(data.labels[7], 7);       // caller's dataset untouched
}

TEST(Registries, LabelFlipDeclaresPoisoningAndPassesGradientThrough) {
  Rng rng(23);
  const auto attack = make_attack("label-flip");
  EXPECT_TRUE(attack->poisons_labels());
  EXPECT_FALSE(make_attack("sign-flip")->poisons_labels());
  const Vector own{1.0, 2.0};
  EXPECT_EQ(*attack->corrupt(own, {}, 0, rng), own);
}

// --- runner + emitters -----------------------------------------------------

// Minimal JSON well-formedness check: balanced brackets/braces outside
// strings, non-empty, ends in one top-level array.
void expect_parses_as_json_array(const std::string& text,
                                 std::size_t expected_objects) {
  ASSERT_FALSE(text.empty());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t top_level_objects = 0;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[' || c == '{') {
      if (c == '{' && depth == 1) ++top_level_objects;
      ++depth;
    } else if (c == ']' || c == '}') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(top_level_objects, expected_objects);
}

TEST(ScenarioRunner, TwoRoundSmokeScenarioEmitsParsableJson) {
  const std::string path = "scenario_test_smoke.json";
  experiments::ScenarioRunner runner;
  experiments::JsonEmitter json(path);
  std::ostringstream console_out;
  experiments::ConsoleEmitter console(console_out);
  // n=4, f=1 keeps t < n/3; eval-max keeps the smoke test fast.
  const auto specs = std::vector<ScenarioSpec>{
      ScenarioSpec::parse(
          "rule=MEAN attack=none n=4 f=1 rounds=2 eval-max=60"),
      ScenarioSpec::parse(
          "rule=KRUM attack=sign-flip n=4 f=1 rounds=2 eval-max=60"),
  };
  const auto summaries = runner.run_all(specs, {&json, &console});

  ASSERT_EQ(summaries.size(), 2u);
  for (const auto& summary : summaries) {
    EXPECT_EQ(summary.result.history.size(), 2u);
    EXPECT_GT(summary.result.history.back().seconds, 0.0);
    EXPECT_GE(summary.result.final_accuracy, 0.0);
  }
  EXPECT_NE(console_out.str().find("cen/mild/KRUM/sign-flip/f1"),
            std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  expect_parses_as_json_array(buffer.str(), 2);
  EXPECT_NE(buffer.str().find("\"rounds\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"gradient_diameter\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ScenarioRunner, StreamsRoundsLive) {
  experiments::ScenarioRunner runner;
  // The emit_round hook must fire during training (streamed through
  // TrainingConfig::on_round), in round order.
  struct Probe final : experiments::MetricsEmitter {
    std::vector<std::size_t> rounds;
    void emit_round(const ScenarioSpec& /*spec*/,
                    const RoundMetrics& metrics) override {
      rounds.push_back(metrics.round);
    }
  } probe;
  runner.run(ScenarioSpec::parse(
                 "rule=CW-MEDIAN attack=zero n=4 f=1 rounds=3 eval-max=40"),
             {&probe});
  EXPECT_EQ(probe.rounds, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ScenarioRunner, UnknownRuleOrAttackRecordedAsErrorWithNames) {
  // Scenario failures are data, not exceptions (one bad cell must not
  // abort a sweep); the registry menus still arrive in the message.
  experiments::ScenarioRunner runner;
  const auto bad_rule = runner.run(ScenarioSpec::parse("rule=NOPE rounds=1"));
  EXPECT_NE(bad_rule.error.find("BOX-GEOM"), std::string::npos);
  EXPECT_TRUE(bad_rule.result.history.empty());
  const auto bad_attack =
      runner.run(ScenarioSpec::parse("attack=nope rounds=1"));
  EXPECT_NE(bad_attack.error.find("sign-flip"), std::string::npos);
}

TEST(ScenarioRunner, DivergentScenarioDoesNotAbortSweep) {
  experiments::ScenarioRunner runner;
  experiments::JsonEmitter json("scenario_test_divergent.json");
  // MEAN under a factor-1e300 magnitude attack overflows the parameters
  // within a round or two; the non-finite gradients are rejected at the
  // aggregation boundary and must surface as an error summary while the
  // healthy scenario after it still runs and both reach the artifact.
  const auto summaries = runner.run_all(
      {ScenarioSpec::parse(
           "rule=MEAN attack=scale:factor=1e300 n=4 f=1 rounds=4 "
           "eval-max=40"),
       ScenarioSpec::parse(
           "rule=CW-MEDIAN attack=none n=4 f=1 rounds=2 eval-max=40")},
      {&json});
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_NE(summaries[0].error.find("non-finite"), std::string::npos);
  EXPECT_TRUE(summaries[1].error.empty());
  EXPECT_EQ(summaries[1].result.history.size(), 2u);
  std::ifstream in("scenario_test_divergent.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  expect_parses_as_json_array(buffer.str(), 2);
  EXPECT_NE(buffer.str().find("non-finite"), std::string::npos);
  std::remove("scenario_test_divergent.json");
}

TEST(ScenarioRunner, LabelFlipScenarioRuns) {
  experiments::ScenarioRunner runner;
  const auto summary = runner.run(ScenarioSpec::parse(
      "rule=CW-MEDIAN attack=label-flip n=4 f=1 rounds=2 eval-max=40"));
  EXPECT_EQ(summary.result.history.size(), 2u);
}

TEST(ScenarioRunner, ParallelJobsMatchSerialBitwiseInOrder) {
  // Same sweep serial and with jobs=3: every cell is deterministic from
  // its seed and emitter replay is in spec order, so histories and the
  // emitted artifact rows must agree exactly.
  const std::vector<ScenarioSpec> specs = {
      ScenarioSpec::parse("rule=MEAN attack=none n=4 f=1 rounds=2 "
                          "eval-max=40"),
      ScenarioSpec::parse("rule=KRUM attack=sign-flip n=4 f=1 rounds=2 "
                          "eval-max=40"),
      ScenarioSpec::parse("topology=decentralized rule=BOX-GEOM "
                          "attack=sign-flip n=4 f=1 rounds=2 eval-max=40"),
      ScenarioSpec::parse("rule=CW-MEDIAN attack=zero n=4 f=1 rounds=2 "
                          "eval-max=40"),
      // The scale= and cohort= keys must replay bitwise under --jobs too:
      // an explicit scale= cell and a sampled-cohort + sharded cell.
      ScenarioSpec::parse("scale=reduced rule=MEDOID attack=zero n=4 f=1 "
                          "rounds=2 eval-max=40"),
      ScenarioSpec::parse("rule=TRIM-MEAN attack=sign-flip n=12 f=2 "
                          "rounds=2 eval-max=40 cohort=0.6,shards=2")};
  experiments::ScenarioRunner serial_runner;
  const auto serial = serial_runner.run_all(specs);
  experiments::ScenarioRunner parallel_runner;
  experiments::JsonEmitter json("scenario_test_parallel.json");
  const auto parallel = parallel_runner.run_all(specs, {&json}, /*jobs=*/3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].spec, parallel[i].spec);  // order preserved
    ASSERT_EQ(serial[i].result.history.size(),
              parallel[i].result.history.size());
    for (std::size_t r = 0; r < serial[i].result.history.size(); ++r) {
      EXPECT_EQ(serial[i].result.history[r].accuracy,
                parallel[i].result.history[r].accuracy);
      EXPECT_EQ(serial[i].result.history[r].mean_honest_loss,
                parallel[i].result.history[r].mean_honest_loss);
    }
  }
  // The artifact holds all cells in spec order.
  std::ifstream in("scenario_test_parallel.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  expect_parses_as_json_array(buffer.str(), specs.size());
  EXPECT_LT(buffer.str().find("MEAN"), buffer.str().find("KRUM"));
  std::remove("scenario_test_parallel.json");
}

// --- cohort determinism ----------------------------------------------------

// ISSUE 8 acceptance criterion: cohort=1,shards=1 routes the full
// membership through the streaming GradientBatch path, and that path must
// be bitwise identical to the pre-cohort lockstep loop — same RNG splits,
// same aggregation inputs in the same row order, same evaluation.
TEST(ScenarioRunner, FullCohortIsBitwiseIdenticalToLockstep) {
  const char* base =
      "rule=CW-MEDIAN attack=sign-flip n=6 f=1 rounds=3 eval-max=40";
  experiments::ScenarioRunner runner;
  const auto lockstep = runner.run(ScenarioSpec::parse(base));
  auto spec = ScenarioSpec::parse(base);
  spec.set("cohort", "1,shards=1");
  const auto streaming = runner.run(spec);
  ASSERT_TRUE(lockstep.error.empty()) << lockstep.error;
  ASSERT_TRUE(streaming.error.empty()) << streaming.error;
  ASSERT_EQ(lockstep.result.history.size(), streaming.result.history.size());
  for (std::size_t r = 0; r < lockstep.result.history.size(); ++r) {
    const auto& a = lockstep.result.history[r];
    const auto& b = streaming.result.history[r];
    EXPECT_EQ(a.accuracy, b.accuracy) << r;
    EXPECT_EQ(a.mean_honest_loss, b.mean_honest_loss) << r;
    EXPECT_EQ(a.gradient_diameter, b.gradient_diameter) << r;
    EXPECT_EQ(a.bytes_delivered, b.bytes_delivered) << r;
    // Both paths report the full membership as the round's cohort.
    EXPECT_EQ(a.cohort, b.cohort) << r;
    EXPECT_EQ(b.cohort, 6.0) << r;
  }
  EXPECT_EQ(lockstep.result.final_accuracy, streaming.result.final_accuracy);
}

// Sharded-aggregation determinism: when shard rule and root rule are both
// the exact mean, the hierarchy collapses to the global mean in input row
// order, so the shard count must not perturb a single bit of the history.
TEST(ScenarioRunner, MeanRootShardCountDoesNotChangeHistory) {
  experiments::ScenarioRunner runner;
  std::vector<experiments::ScenarioSummary> runs;
  for (const char* shards : {"1", "4", "16"}) {
    auto spec = ScenarioSpec::parse(
        "rule=MEAN attack=none n=8 f=1 rounds=2 eval-max=40");
    spec.set("cohort", std::string("1,shards=") + shards);
    runs.push_back(runner.run(spec));
    ASSERT_TRUE(runs.back().error.empty()) << runs.back().error;
  }
  for (std::size_t v = 1; v < runs.size(); ++v) {
    ASSERT_EQ(runs[0].result.history.size(), runs[v].result.history.size());
    for (std::size_t r = 0; r < runs[0].result.history.size(); ++r) {
      const auto& a = runs[0].result.history[r];
      const auto& b = runs[v].result.history[r];
      EXPECT_EQ(a.accuracy, b.accuracy) << v << "/" << r;
      EXPECT_EQ(a.mean_honest_loss, b.mean_honest_loss) << v << "/" << r;
      EXPECT_EQ(a.gradient_diameter, b.gradient_diameter) << v << "/" << r;
      EXPECT_EQ(a.bytes_delivered, b.bytes_delivered) << v << "/" << r;
    }
  }
}

TEST(ScenarioRunner, CohortOnDecentralizedIsAnErrorSummary) {
  // cohort= is a server-side mechanism; on the decentralized topology the
  // runner records the mismatch as the cell's error (sweeps keep going).
  experiments::ScenarioRunner runner;
  const auto summary = runner.run(ScenarioSpec::parse(
      "topology=decentralized rule=BOX-GEOM attack=none n=4 f=1 rounds=1 "
      "eval-max=40 cohort=0.5"));
  EXPECT_NE(summary.error.find("topology=centralized"), std::string::npos)
      << summary.error;
  EXPECT_TRUE(summary.result.history.empty());
}

TEST(ScenarioRunner, AsyncNetScenarioReportsSimulatedSeconds) {
  experiments::ScenarioRunner runner;
  const auto summary = runner.run(ScenarioSpec::parse(
      "rule=CW-MEDIAN attack=none n=4 f=1 rounds=2 eval-max=40 "
      "net=async:delay=const,mean=3"));
  ASSERT_TRUE(summary.error.empty()) << summary.error;
  ASSERT_EQ(summary.result.history.size(), 2u);
  for (const auto& metrics : summary.result.history) {
    EXPECT_GT(metrics.sim_seconds, 0.0);
  }
}

TEST(SweepExpansion, GridMatchesExecutedCellOrder) {
  // The contract behind `bcl_run --dry-run`: expand_sweep's grid, in
  // order, is exactly the sequence of cells a run would execute — so the
  // printed dry-run lines can be trusted cell for cell.
  experiments::SweepAxes axes;
  axes.rules = {"MEAN", "KRUM"};
  axes.attacks = {"none", "sign-flip"};
  axes.comps = {"identity", "topk:frac=0.5"};
  const auto specs =
      experiments::expand_sweep(axes, [](ScenarioSpec& spec) {
        spec.set("n", "4");
        spec.set("rounds", "1");
        spec.set("eval-max", "20");
      });
  ASSERT_EQ(specs.size(), 8u);
  // comp is an outer axis relative to rule/attack: the first four cells
  // are identity, the last four topk, each in rule-major order.
  EXPECT_EQ(specs[0].comp, "identity");
  EXPECT_EQ(specs[4].comp, "topk:frac=0.5");
  EXPECT_EQ(specs[0].rule, "MEAN");
  EXPECT_EQ(specs[1].attack, "sign-flip");
  EXPECT_EQ(specs[2].rule, "KRUM");

  // Execute the grid and record the begin_scenario order.
  struct OrderProbe final : experiments::MetricsEmitter {
    std::vector<std::string> begun;
    void begin_scenario(const ScenarioSpec& spec) override {
      begun.push_back(spec.to_string());
    }
  } probe;
  experiments::ScenarioRunner runner;
  runner.run_all(specs, {&probe});
  ASSERT_EQ(probe.begun.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(probe.begun[i], specs[i].to_string()) << i;
  }
}

TEST(SweepExpansion, InvalidAxisValueFailsBeforeAnyCell) {
  experiments::SweepAxes axes;
  axes.comps = {"identity", "gzip"};
  EXPECT_THROW(experiments::expand_sweep(axes), std::invalid_argument);
  axes.comps = {"identity"};
  axes.nets = {"wireless"};
  EXPECT_THROW(experiments::expand_sweep(axes), std::invalid_argument);
}

TEST(ScenarioRunner, FixedSubroundsHonoured) {
  experiments::ScenarioRunner runner;
  // With full synchrony one sub-round reaches exact agreement; the spec
  // only needs to run, proving the subrounds key reaches the trainer.
  const auto summary = runner.run(ScenarioSpec::parse(
      "topology=decentralized rule=BOX-MEAN attack=crash n=4 f=1 "
      "subrounds=2 rounds=2 eval-max=40"));
  EXPECT_EQ(summary.result.history.size(), 2u);
}

}  // namespace
}  // namespace bcl
