// Tests for the approximation framework of Section 3: S_geo (Definition
// 3.1), the minimum covering ball, the c-approximation measure (Definition
// 3.3), and Lemma 3.2 (the true geometric median lies in the convex hull of
// S_geo — tested through its covering ball).

#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/approximation.hpp"
#include "aggregation/registry.hpp"
#include "geometry/subsets.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

VectorList random_points(Rng& rng, std::size_t n, std::size_t d,
                         double span = 2.0) {
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-span, span);
    pts.push_back(p);
  }
  return pts;
}

TEST(Sgeo, CountMatchesBinomial) {
  Rng rng(1);
  const VectorList pts = random_points(rng, 7, 2);
  EXPECT_EQ(compute_sgeo(pts, 2).size(), binomial(7, 5));
  EXPECT_EQ(compute_smean(pts, 1).size(), binomial(7, 6));
}

TEST(Sgeo, ZeroFaultsSingleton) {
  Rng rng(2);
  const VectorList pts = random_points(rng, 5, 3);
  const auto sgeo = compute_sgeo(pts, 0);
  ASSERT_EQ(sgeo.size(), 1u);
  EXPECT_TRUE(approx_equal(sgeo[0], geometric_median_point(pts), 1e-9));
}

TEST(Sgeo, ParallelMatchesSerial) {
  Rng rng(3);
  const VectorList pts = random_points(rng, 8, 3);
  ThreadPool pool(3);
  const auto serial = compute_sgeo(pts, 2, nullptr);
  const auto parallel = compute_sgeo(pts, 2, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(approx_equal(serial[i], parallel[i], 0.0));
  }
}

TEST(Sgeo, InvalidTThrows) {
  EXPECT_THROW(compute_sgeo({{1.0}}, 1), std::invalid_argument);
}

TEST(Lemma32, TrueMedianInsideCoveringBallOfSgeo) {
  // Lemma 3.2: mu* ∈ Conv(S_geo); therefore dist(mu*, ball center) <= r_cov
  // for the minimum covering ball of S_geo.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8;
    const std::size_t t = 2;
    const std::size_t f = 1 + rng.uniform_u64(t);  // f <= t
    VectorList honest = random_points(rng, n - f, 3);
    VectorList all = honest;
    for (std::size_t b = 0; b < f; ++b) {
      all.push_back(constant(3, rng.uniform(-50.0, 50.0)));
    }
    const Vector mu_star = geometric_median_point(honest);
    const auto sgeo = compute_sgeo(all, t);
    const Ball ball = minimum_enclosing_ball(sgeo);
    EXPECT_LE(distance(mu_star, ball.center),
              ball.radius + 1e-3 * (1.0 + ball.radius));
  }
}

TEST(Measure, PerfectOutputHasDistanceZero) {
  Rng rng(5);
  const VectorList honest = random_points(rng, 6, 2);
  const Vector mu = geometric_median_point(honest);
  const auto report = measure_geo_approximation(honest, honest, 1, mu);
  EXPECT_NEAR(report.distance_to_true, 0.0, 1e-9);
  EXPECT_LT(report.ratio, 1e-3);
}

TEST(Measure, RatioScalesWithDistance) {
  Rng rng(6);
  const VectorList honest = random_points(rng, 6, 2);
  const auto near_report = measure_geo_approximation(
      honest, honest, 1, geometric_median_point(honest));
  Vector far = geometric_median_point(honest);
  far[0] += 100.0;
  const auto far_report = measure_geo_approximation(honest, honest, 1, far);
  EXPECT_GT(far_report.ratio, near_report.ratio);
  EXPECT_GT(far_report.ratio, 10.0);
}

TEST(Measure, ZeroRadiusZeroDistanceGivesZeroRatio) {
  // All inputs identical: S_geo is one point, r_cov = 0; an exact output
  // has ratio 0 by the Definition 3.3 convention.
  const VectorList pts(5, Vector{1.0, 2.0});
  const auto report = measure_geo_approximation(pts, pts, 1, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(report.ratio, 0.0);
}

TEST(Measure, ZeroRadiusPositiveDistanceGivesInfiniteRatio) {
  // This is precisely the mechanism of Theorems 4.1 and 4.3: a degenerate
  // candidate set with a strictly-off output.
  const VectorList pts(5, Vector{1.0, 2.0});
  const auto report = measure_geo_approximation(pts, pts, 1, {3.0, 2.0});
  EXPECT_TRUE(std::isinf(report.ratio));
}

TEST(Measure, MeanVariantUsesTrueMean) {
  Rng rng(7);
  const VectorList honest = random_points(rng, 6, 3);
  const auto report =
      measure_mean_approximation(honest, honest, 1, mean(honest));
  EXPECT_NEAR(report.distance_to_true, 0.0, 1e-12);
}

TEST(Measure, EmptyHonestThrows) {
  EXPECT_THROW(measure_geo_approximation({{1.0}}, {}, 0, {1.0}),
               std::invalid_argument);
}

// Sweep: every robust rule achieves a bounded measured ratio on generic
// adversarial inputs (the *unbounded* cases need the specific degenerate
// constructions tested in paper_claims_test.cpp).
class RuleRatioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RuleRatioTest, MeasuredRatioFiniteOnGenericInputs) {
  const auto rule = make_rule(GetParam());
  Rng rng(8);
  AggregationContext ctx;
  ctx.n = 8;
  ctx.t = 2;
  for (int trial = 0; trial < 5; ++trial) {
    VectorList honest = random_points(rng, 6, 3);
    VectorList all = honest;
    all.push_back(constant(3, 30.0));
    all.push_back(constant(3, -30.0));
    const Vector out = rule->aggregate(all, ctx);
    const auto report = measure_geo_approximation(all, honest, ctx.t, out);
    EXPECT_TRUE(std::isfinite(report.ratio)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Rules, RuleRatioTest,
                         ::testing::Values("MD-GEOM", "BOX-GEOM", "BOX-MEAN",
                                           "MD-MEAN", "GEOMED", "CW-MEDIAN"));

}  // namespace
}  // namespace bcl
