// Tests for the shared distance-matrix workspace: DistanceMatrix agrees
// with the per-pair kernels it replaces (bitwise, not approximately), the
// pool-parallel build matches the serial one, laziness works, and every
// workspace-aware aggregation rule / round function produces exactly the
// same output through the legacy single-inbox signature and through a
// shared workspace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "aggregation/krum.hpp"
#include "aggregation/registry.hpp"
#include "agreement/round_function.hpp"
#include "geometry/medoid.hpp"
#include "geometry/min_diameter.hpp"
#include "geometry/subsets.hpp"
#include "linalg/distance_matrix.hpp"
#include "linalg/kernels.hpp"
#include "linalg/sparse_rows.hpp"
#include "linalg/workspace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

VectorList random_points(Rng& rng, std::size_t n, std::size_t d,
                         double span = 4.0) {
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-span, span);
    pts.push_back(p);
  }
  return pts;
}

// --- DistanceMatrix vs. the primitive kernels ---

TEST(DistanceMatrix, MatchesPairwiseKernelsExactly) {
  Rng rng(11);
  const VectorList pts = random_points(rng, 9, 5);
  const DistanceMatrix dm(pts);
  ASSERT_EQ(dm.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(dm.dist(i, i), 0.0);
    EXPECT_EQ(dm.dist2(i, i), 0.0);
    for (std::size_t j = 0; j < pts.size(); ++j) {
      EXPECT_EQ(dm.dist2(i, j), distance_squared(pts[i], pts[j]));
      EXPECT_EQ(dm.dist(i, j), distance(pts[i], pts[j]));
      EXPECT_EQ(dm.dist(i, j), dm.dist(j, i));
    }
  }
}

TEST(DistanceMatrix, DiameterMatchesFreeFunctionBitwise) {
  Rng rng(12);
  const VectorList pts = random_points(rng, 12, 7);
  const DistanceMatrix dm(pts);
  EXPECT_EQ(dm.diameter(), diameter(pts));
}

TEST(DistanceMatrix, SubsetDiameterMatchesGatheredDiameter) {
  Rng rng(13);
  const VectorList pts = random_points(rng, 10, 4);
  const DistanceMatrix dm(pts);
  for_each_combination(pts.size(), 4,
                       [&](const std::vector<std::size_t>& idx) {
                         EXPECT_EQ(dm.subset_diameter(idx),
                                   diameter(gather(pts, idx)));
                       });
}

TEST(DistanceMatrix, RowSumMatchesMedoidScore) {
  Rng rng(14);
  const VectorList pts = random_points(rng, 11, 6);
  const DistanceMatrix dm(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(dm.row_sum(i), medoid_score(pts, i));
    EXPECT_EQ(medoid_score(dm, i), medoid_score(pts, i));
  }
}

TEST(DistanceMatrix, ParallelBuildIdenticalToSerial) {
  Rng rng(15);
  const VectorList pts = random_points(rng, 23, 17);
  ThreadPool pool(4);
  const DistanceMatrix serial(pts);
  const DistanceMatrix parallel(pts, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      EXPECT_EQ(serial.dist(i, j), parallel.dist(i, j));
      EXPECT_EQ(serial.dist2(i, j), parallel.dist2(i, j));
    }
  }
}

TEST(DistanceMatrix, DegenerateSizes) {
  EXPECT_TRUE(DistanceMatrix().empty());
  const DistanceMatrix one(VectorList{{1.0, 2.0}});
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.diameter(), 0.0);
  EXPECT_THROW(DistanceMatrix(VectorList{{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
}

// --- workspace laziness and guards ---

TEST(AggregationWorkspace, BuildsDistancesLazilyAndOnce) {
  Rng rng(16);
  const VectorList pts = random_points(rng, 8, 3);
  AggregationWorkspace ws(pts);
  EXPECT_FALSE(ws.has_distances());
  const DistanceMatrix* first = &ws.distances();
  EXPECT_TRUE(ws.has_distances());
  EXPECT_EQ(first, &ws.distances());  // cached, not rebuilt
  EXPECT_EQ(ws.size(), pts.size());
  EXPECT_EQ(&ws.points(), &pts);
}

TEST(AggregationWorkspace, MismatchedInboxThrows) {
  Rng rng(17);
  const VectorList pts = random_points(rng, 8, 3);
  const VectorList other = random_points(rng, 6, 3);
  AggregationWorkspace ws(other);
  AggregationContext ctx;
  ctx.n = 8;
  ctx.t = 2;
  const auto rule = make_rule("MEAN");
  EXPECT_THROW(rule->aggregate(pts, ws, ctx), std::invalid_argument);
}

// --- geometry searches: matrix form vs legacy form ---

TEST(DistanceMatrix, KrumScoresMatchBruteForce) {
  Rng rng(18);
  const VectorList pts = random_points(rng, 10, 6);
  const DistanceMatrix dm(pts);
  const std::size_t closest = 7;
  for (KrumScore flavour : {KrumScore::Euclidean, KrumScore::Squared}) {
    const auto legacy = krum_scores(pts, closest, flavour);
    const auto shared = krum_scores(dm, closest, flavour);
    ASSERT_EQ(legacy.size(), shared.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(legacy[i], shared[i]);
    }
    // Independent reference: sort all distances from i, sum the smallest.
    for (std::size_t i = 0; i < pts.size(); ++i) {
      std::vector<double> dists;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (j == i) continue;
        const double d2 = distance_squared(pts[i], pts[j]);
        dists.push_back(flavour == KrumScore::Squared ? d2 : std::sqrt(d2));
      }
      std::sort(dists.begin(), dists.end());
      double expected = 0.0;
      for (std::size_t k = 0; k < closest; ++k) expected += dists[k];
      EXPECT_NEAR(shared[i], expected, 1e-12 * (1.0 + std::abs(expected)));
    }
  }
}

TEST(DistanceMatrix, MedoidIndexMatchesBruteForce) {
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const VectorList pts = random_points(rng, 9, 4);
    std::size_t best = 0;
    double best_score = medoid_score(pts, 0);
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double s = medoid_score(pts, i);
      if (s < best_score) {
        best_score = s;
        best = i;
      }
    }
    EXPECT_EQ(medoid_index(pts), best);
    EXPECT_EQ(medoid_index(DistanceMatrix(pts)), best);
  }
}

TEST(DistanceMatrix, MinDiameterSubsetMatchesLegacyAndBruteForce) {
  Rng rng(20);
  for (int trial = 0; trial < 10; ++trial) {
    const VectorList pts = random_points(rng, 9, 3);
    const std::size_t k = 6;
    const auto legacy = min_diameter_subset(pts, k);
    const auto shared = min_diameter_subset(DistanceMatrix(pts), k);
    EXPECT_EQ(legacy.indices, shared.indices);
    EXPECT_EQ(legacy.diameter, shared.diameter);
    double brute = std::numeric_limits<double>::infinity();
    for_each_combination(pts.size(), k,
                         [&](const std::vector<std::size_t>& idx) {
                           brute = std::min(brute, diameter(gather(pts, idx)));
                         });
    EXPECT_DOUBLE_EQ(shared.diameter, brute);

    const auto tied_legacy = min_diameter_subsets(pts, k, 1e-9);
    const auto tied_shared = min_diameter_subsets(DistanceMatrix(pts), k, 1e-9);
    ASSERT_EQ(tied_legacy.size(), tied_shared.size());
    for (std::size_t i = 0; i < tied_legacy.size(); ++i) {
      EXPECT_EQ(tied_legacy[i].indices, tied_shared[i].indices);
      EXPECT_EQ(tied_legacy[i].diameter, tied_shared[i].diameter);
    }
  }
}

// --- regression: every rule, workspace path vs legacy path ---

TEST(WorkspaceRegression, AllRulesMatchLegacySignatureExactly) {
  Rng rng(21);
  std::vector<std::string> names = all_rule_names();
  for (const auto& extra : extended_rule_names()) names.push_back(extra);
  for (int trial = 0; trial < 5; ++trial) {
    const VectorList received = random_points(rng, 10, 8);
    AggregationContext ctx;
    ctx.n = 10;
    ctx.t = 2;
    for (const auto& name : names) {
      const auto rule = make_rule(name);
      const Vector legacy = rule->aggregate(received, ctx);
      AggregationWorkspace ws(received);
      const Vector shared = rule->aggregate(received, ws, ctx);
      EXPECT_EQ(legacy, shared) << "rule " << name << " trial " << trial;
    }
  }
}

TEST(WorkspaceRegression, OneWorkspaceServesManyRules) {
  Rng rng(22);
  const VectorList received = random_points(rng, 10, 16);
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  // The comparison-suite pattern: one inbox, one workspace, many rules.
  AggregationWorkspace ws(received);
  for (const auto& name : {"KRUM", "MULTIKRUM-3", "MEDOID", "MD-MEAN",
                           "MD-GEOM", "BOX-GEOM"}) {
    const auto rule = make_rule(name);
    EXPECT_EQ(rule->aggregate(received, ws, ctx),
              rule->aggregate(received, ctx))
        << "rule " << name;
  }
  // Distance-based rules share the one matrix built above.
  EXPECT_TRUE(ws.has_distances());
}

TEST(WorkspaceRegression, PoolWorkspaceMatchesSerial) {
  Rng rng(23);
  const VectorList received = random_points(rng, 12, 10);
  ThreadPool pool(4);
  AggregationContext ctx;
  ctx.n = 12;
  ctx.t = 2;
  for (const auto& name : {"KRUM", "MEDOID", "MD-MEAN", "BOX-MEAN"}) {
    const auto rule = make_rule(name);
    AggregationWorkspace serial_ws(received);
    AggregationWorkspace pool_ws(received, &pool);
    EXPECT_EQ(rule->aggregate(received, serial_ws, ctx),
              rule->aggregate(received, pool_ws, ctx))
        << "rule " << name;
  }
}

TEST(WorkspaceRegression, RoundFunctionsMatchLegacyStep) {
  Rng rng(24);
  const VectorList received = random_points(rng, 10, 6);
  const Vector current = random_points(rng, 1, 6).front();
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  for (const auto& name : {"BOX-GEOM", "MD-GEOM", "MD-GEOM-STICKY", "KRUM"}) {
    const auto round = make_round_function(name);
    AggregationWorkspace ws(received);
    EXPECT_EQ(round->step(received, ws, current, ctx),
              round->step(received, current, ctx))
        << "round function " << name;
  }
}

// --- sparse (SpGEMM) build vs pairwise vs dense ---

/// Random sparse batch at the given density; `offset` adds a large common
/// value on a shared coordinate set to provoke Gram-identity cancellation.
SparseRows random_sparse(Rng& rng, std::size_t m, std::size_t d,
                         double density, double offset = 0.0) {
  SparseRows rows(d);
  std::vector<std::uint32_t> idx;
  std::vector<double> val;
  for (std::size_t i = 0; i < m; ++i) {
    idx.clear();
    val.clear();
    for (std::size_t k = 0; k < d; ++k) {
      const bool shared = offset != 0.0 && k < d / 100 + 1;
      if (!shared && rng.uniform() >= density) continue;
      idx.push_back(static_cast<std::uint32_t>(k));
      val.push_back(rng.uniform(-1.0, 1.0) * 1e-3 + (shared ? offset : 0.0));
    }
    rows.push_row(idx.data(), val.data(), val.size());
  }
  return rows;
}

VectorList densify(const SparseRows& rows) {
  VectorList out;
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    Vector v(rows.dim(), 0.0);
    rows.decode_row_into(i, v.data());
    out.push_back(v);
  }
  return out;
}

/// The pre-SpGEMM sparse build: m^2/2 pairwise merge kernels with the same
/// cancellation guard the production constructor uses.
std::vector<double> pairwise_sparse_d2(const SparseRows& rows) {
  const std::size_t m = rows.rows();
  std::vector<double> norms(m), d2(m * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    norms[i] = kernels::sparse_dot_sparse(
        rows.row_indices(i), rows.row_values(i), rows.row_nnz(i),
        rows.row_indices(i), rows.row_values(i), rows.row_nnz(i));
  }
  constexpr double kCancelGuard = 1.0e-6;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double g = kernels::sparse_dot_sparse(
          rows.row_indices(i), rows.row_values(i), rows.row_nnz(i),
          rows.row_indices(j), rows.row_values(j), rows.row_nnz(j));
      double s = norms[i] + norms[j] - 2.0 * g;
      const double scale = norms[i] + norms[j];
      if (s < kCancelGuard * scale) {
        s = kernels::sparse_diff_norm2(
            rows.row_indices(i), rows.row_values(i), rows.row_nnz(i),
            rows.row_indices(j), rows.row_values(j), rows.row_nnz(j));
      }
      d2[i * m + j] = d2[j * m + i] = s;
    }
  }
  return d2;
}

TEST(SparseDistanceMatrix, SpgemmMatchesPairwiseBitwiseAndDenseClosely) {
  Rng rng(31);
  const std::size_t m = 40, d = 500;
  const SparseRows rows = random_sparse(rng, m, d, 0.05);
  const DistanceMatrix sparse(rows);
  const DistanceMatrix dense(densify(rows));
  const std::vector<double> pairwise = pairwise_sparse_d2(rows);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      // The SpGEMM row accumulates each pair's common coordinates in the
      // same order as the pairwise merge: bitwise, not approximately.
      EXPECT_EQ(sparse.dist2(i, j), pairwise[i * m + j])
          << "pair " << i << "," << j;
      EXPECT_NEAR(sparse.dist2(i, j), dense.dist2(i, j), 1e-9);
    }
  }
}

TEST(SparseDistanceMatrix, LargeCommonOffsetStaysAccurate) {
  // Rows share a ~1e8 offset on a few coordinates with 1e-3-scale deltas:
  // the Gram identity cancels catastrophically (||x||^2 ~ 1e16, true
  // distance ~ 1e-6), the guard must kick in on the SpGEMM path exactly as
  // it did pairwise, and the result must match the direct difference form.
  Rng rng(33);
  const std::size_t m = 12, d = 300;
  const SparseRows rows = random_sparse(rng, m, d, 0.05, 1.0e8);
  const DistanceMatrix sparse(rows);
  const std::vector<double> pairwise = pairwise_sparse_d2(rows);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(sparse.dist2(i, j), pairwise[i * m + j]);
      if (i == j) continue;
      const double direct = kernels::sparse_diff_norm2(
          rows.row_indices(i), rows.row_values(i), rows.row_nnz(i),
          rows.row_indices(j), rows.row_values(j), rows.row_nnz(j));
      // Guard engaged: the stored distance is the difference form, not the
      // cancelled Gram value (which would be off by orders of magnitude).
      EXPECT_EQ(sparse.dist2(i, j), direct);
      EXPECT_GT(direct, 0.0);
      EXPECT_LT(direct, 1.0);  // deltas are 1e-3-scale: sanity of the regime
    }
  }
}

TEST(SparseDistanceMatrix, PoolBuildIdenticalToSerial) {
  Rng rng(35);
  const SparseRows rows = random_sparse(rng, 30, 400, 0.08);
  ThreadPool pool(4);
  const DistanceMatrix serial(rows);
  const DistanceMatrix parallel(rows, &pool);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 0; j < 30; ++j) {
      EXPECT_EQ(serial.dist2(i, j), parallel.dist2(i, j));
    }
  }
}

}  // namespace
}  // namespace bcl
