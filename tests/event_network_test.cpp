// Tests for the discrete-event network core: the NetConfig grammar, the
// delay models, event delivery / timeout / drop / late accounting
// (NetworkStats), adversarial scheduling power, and the sync-vs-event
// equivalence contract — the zero-delay event engine must reproduce the
// synchronous engine bitwise across agreement and learning.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "agreement/protocol.hpp"
#include "agreement/round_function.hpp"
#include "aggregation/registry.hpp"
#include "attacks/registry.hpp"
#include "learning/decentralized.hpp"
#include "ml/architectures.hpp"
#include "ml/dataset.hpp"
#include "network/adversary.hpp"
#include "network/delay_model.hpp"
#include "network/event_network.hpp"
#include "network/sync_network.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

// --- NetConfig grammar -----------------------------------------------------

TEST(NetConfig, SyncDefault) {
  const NetConfig config = NetConfig::parse("sync");
  EXPECT_FALSE(config.async);
  EXPECT_EQ(config.to_string(), "sync");
}

TEST(NetConfig, ParseToStringRoundTrips) {
  for (const char* text :
       {"sync", "async", "async:delay=zero", "async:delay=const,mean=2.5",
        "async:delay=exp,mean=5", "async:delay=uniform,min=1,max=3",
        "async:delay=mmpp,mean=1,mean2=20,p01=0.2,p10=0.4",
        "async:delay=partition,mean=1,penalty=40,until=8",
        "async:delay=exp,mean=5,drop=0.01,timeout=50,adv=2",
        // Keys the family does not consume still round-trip.
        "async:delay=exp,min=2,max=9"}) {
    const NetConfig config = NetConfig::parse(text);
    EXPECT_EQ(NetConfig::parse(config.to_string()), config)
        << "round trip failed for '" << text << "'";
  }
}

TEST(NetConfig, RejectsUnknownModeFamilyAndKeys) {
  EXPECT_THROW(NetConfig::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(NetConfig::parse("sync:delay=exp"), std::invalid_argument);
  EXPECT_THROW(NetConfig::parse("async:delay=gamma"), std::invalid_argument);
  EXPECT_THROW(NetConfig::parse("async:latency=5"), std::invalid_argument);
  EXPECT_THROW(NetConfig::parse("async:delay=exp,mean="),
               std::invalid_argument);
  EXPECT_THROW(NetConfig::parse("async:drop=1.5"), std::invalid_argument);
  EXPECT_THROW(NetConfig::parse("async:delay=uniform,min=3,max=1"),
               std::invalid_argument);
}

// --- delay models ----------------------------------------------------------

TEST(DelayModel, MessageStreamIsDeterministicPerKey) {
  Rng a = message_stream(7, 1, 2, 3);
  Rng b = message_stream(7, 1, 2, 3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = message_stream(7, 2, 1, 3);  // direction matters
  EXPECT_NE(message_stream(7, 1, 2, 3).next_u64(), c.next_u64());
}

TEST(DelayModel, SamplesMatchConfiguredFamilies) {
  const NetConfig constant = NetConfig::parse("async:delay=const,mean=2.5");
  auto model = make_delay_model(constant, 10);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model->sample(0, 1, 0, rng), 2.5);

  const NetConfig uniform =
      NetConfig::parse("async:delay=uniform,min=1,max=3");
  auto uniform_model = make_delay_model(uniform, 10);
  for (int i = 0; i < 200; ++i) {
    const double d = uniform_model->sample(0, 1, 0, rng);
    EXPECT_GE(d, 1.0);
    EXPECT_LT(d, 3.0);
  }

  const NetConfig exponential = NetConfig::parse("async:delay=exp,mean=5");
  auto exp_model = make_delay_model(exponential, 10);
  double sum = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) sum += exp_model->sample(0, 1, 0, rng);
  EXPECT_NEAR(sum / draws, 5.0, 0.3);  // LLN at 20k draws
}

TEST(DelayModel, MmppStateIsDeterministicAndBursty) {
  const NetConfig config =
      NetConfig::parse("async:delay=mmpp,mean=0.5,mean2=50,p01=0.3,p10=0.3");
  MmppDelayModel a(0.5, 50.0, 0.3, 0.3, /*seed=*/11);
  MmppDelayModel b(0.5, 50.0, 0.3, 0.3, /*seed=*/11);
  // Query out of order: state must be a pure function of (sender, round).
  EXPECT_EQ(a.congested(0, 40), b.congested(0, 40));
  for (std::size_t r = 0; r < 40; ++r) {
    EXPECT_EQ(a.congested(0, r), b.congested(0, r));
  }
  // With symmetric switching both states must appear over a long horizon.
  bool saw_calm = false;
  bool saw_burst = false;
  for (std::size_t r = 0; r < 200; ++r) {
    (a.congested(0, r) ? saw_burst : saw_calm) = true;
  }
  EXPECT_TRUE(saw_calm);
  EXPECT_TRUE(saw_burst);
  // Burstiness: the marginal latency mixes a slow and a fast mode, so its
  // coefficient of variation exceeds an exponential's (the MMPP > 1
  // property that motivates the model).
  auto model = make_delay_model(config, 10);
  Rng rng(3);
  std::vector<double> draws;
  for (std::size_t r = 0; r < 4000; ++r) {
    draws.push_back(model->sample(0, 1, r, rng));
  }
  double mean = 0.0;
  for (double d : draws) mean += d;
  mean /= static_cast<double>(draws.size());
  double var = 0.0;
  for (double d : draws) var += (d - mean) * (d - mean);
  var /= static_cast<double>(draws.size());
  EXPECT_GT(var / (mean * mean), 1.2);  // exponential would give ~1
}

TEST(DelayModel, MmppWindowedCountsAreOverdispersed) {
  // The defining MMPP property from the arrival-process literature: treat
  // successive per-round latencies as inter-arrival gaps of a point
  // process and count arrivals in fixed time windows — the squared
  // coefficient of variation (index of dispersion) of the per-window
  // counts exceeds 1, whereas a Poisson (exponential) stream sits at ~1.
  // Long dwell times (p01 = p10 = 0.05) make the bursts macroscopic.
  const auto dispersion = [](DelayModel& model) {
    std::vector<double> arrivals;
    double t = 0.0;
    for (std::size_t r = 0; r < 20000; ++r) {
      Rng rng = message_stream(17, 0, 1, r);
      t += model.sample(0, 1, r, rng);
      arrivals.push_back(t);
    }
    const double window = t / 400.0;  // ~50 arrivals per window on average
    std::vector<double> counts(400, 0.0);
    for (double a : arrivals) {
      const auto w = static_cast<std::size_t>(a / window);
      if (w < counts.size()) counts[w] += 1.0;
    }
    double mean = 0.0;
    for (double c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (double c : counts) var += (c - mean) * (c - mean);
    var /= static_cast<double>(counts.size());
    return var / mean;
  };

  MmppDelayModel mmpp(/*calm_mean=*/1.0, /*burst_mean=*/20.0, /*p01=*/0.05,
                      /*p10=*/0.05, /*seed=*/23);
  ExponentialDelayModel exponential(1.0);
  EXPECT_GT(dispersion(mmpp), 1.5);
  EXPECT_LT(dispersion(exponential), 1.3);  // Poisson control stays near 1
}

TEST(DelayModel, PartitionPenalizesCrossLinksUntilHealed) {
  PartitionDelayModel model(/*base_mean=*/0.0, /*penalty=*/40.0,
                            /*until=*/5, /*boundary=*/2);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.sample(0, 1, 0, rng), 0.0);    // same camp
  EXPECT_DOUBLE_EQ(model.sample(0, 3, 0, rng), 40.0);   // cross, partitioned
  EXPECT_DOUBLE_EQ(model.sample(0, 3, 5, rng), 0.0);    // healed
  PartitionDelayModel hard(0.0, /*penalty=*/-1.0, 5, 2);
  EXPECT_LT(hard.sample(3, 0, 2, rng), 0.0);  // hard partition drops
}

// --- event engine ----------------------------------------------------------

/// Owned copy of a delivered message: payloads are views valid only during
/// receive(), so a recorder that keeps them must materialize them.
struct Recorded {
  std::size_t sender = 0;
  Vector payload;
};

using RecordedInboxes = std::map<std::size_t, std::vector<Recorded>>;

/// Records everything it receives; broadcasts a constant tagged by id.
class RecordingProcess final : public HonestProcess {
 public:
  explicit RecordingProcess(std::size_t id) : id_(id) {}
  Vector outgoing(std::size_t /*round*/) const override {
    return {static_cast<double>(id_)};
  }
  void receive(std::size_t round, std::vector<Message>&& inbox) override {
    auto& recorded = inboxes_[round];
    recorded.reserve(inbox.size());
    for (const Message& msg : inbox) {
      recorded.push_back({msg.sender, msg.payload.to_vector()});
    }
  }
  const RecordedInboxes& inboxes() const { return inboxes_; }

 private:
  std::size_t id_;
  RecordedInboxes inboxes_;
};

struct Fleet {
  std::vector<std::unique_ptr<RecordingProcess>> owned;
  std::vector<HonestProcess*> pointers;
  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<RecordingProcess>(i));
      pointers.push_back(owned.back().get());
    }
  }
};

TEST(EventNetwork, ZeroDelayMatchesSyncNetworkBitwise) {
  const std::size_t n = 6;
  const std::size_t rounds = 4;
  Fleet sync_fleet(n);
  Fleet event_fleet(n);
  NoAdversary sync_adv;
  NoAdversary event_adv;
  SyncNetwork sync_net(sync_fleet.pointers, sync_adv, nullptr, n - 1);
  EventNetworkConfig config;
  config.quorum = n - 1;
  config.timeout = 0.0;
  EventNetwork event_net(event_fleet.pointers, event_adv, config);
  sync_net.run(rounds);
  event_net.run(rounds);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < rounds; ++r) {
      const auto& a = sync_fleet.owned[i]->inboxes().at(r);
      const auto& b = event_fleet.owned[i]->inboxes().at(r);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a[k].sender, b[k].sender);
        EXPECT_EQ(a[k].payload, b[k].payload);
      }
    }
  }
  EXPECT_EQ(sync_net.stats().messages_delivered,
            event_net.stats().messages_delivered);
  EXPECT_EQ(event_net.now(), 0.0);  // zero simulated time under synchrony
}

TEST(EventNetwork, ConstantDelayAdvancesSimulatedTime) {
  const std::size_t n = 4;
  Fleet fleet(n);
  NoAdversary adversary;
  ConstantDelayModel delay(2.0);
  EventNetworkConfig config;
  config.quorum = n;  // wait for everyone
  config.timeout = -1.0;
  config.delay = &delay;
  EventNetwork net(fleet.pointers, adversary, config);
  net.run(3);
  // Every round waits for the slowest link (2.0): rounds complete at 2, 4, 6.
  ASSERT_EQ(net.round_end_times().size(), 3u);
  EXPECT_DOUBLE_EQ(net.round_end_times()[0], 2.0);
  EXPECT_DOUBLE_EQ(net.round_end_times()[1], 4.0);
  EXPECT_DOUBLE_EQ(net.round_end_times()[2], 6.0);
  EXPECT_DOUBLE_EQ(net.last_round_latency(), 2.0);
  // Full delivery: all n^2 messages per round arrived in time.
  EXPECT_EQ(net.stats().messages_delivered, 3 * n * n);
  EXPECT_EQ(net.stats().messages_late, 0u);
}

/// Broadcasts a fixed-dimension payload and reports a custom wire size,
/// like a compressing node would.
class WireProcess final : public HonestProcess {
 public:
  WireProcess(std::size_t id, std::size_t dim, std::size_t wire)
      : id_(id), dim_(dim), wire_(wire) {}
  Vector outgoing(std::size_t /*round*/) const override {
    return Vector(dim_, static_cast<double>(id_));
  }
  std::size_t outgoing_wire_bytes(std::size_t /*round*/) const override {
    return wire_;
  }
  void receive(std::size_t, std::vector<Message>&& inbox) override {
    last_wire_.clear();
    for (const Message& msg : inbox) last_wire_.push_back(msg.wire_bytes);
  }
  const std::vector<std::size_t>& last_wire() const { return last_wire_; }

 private:
  std::size_t id_, dim_, wire_;
  std::vector<std::size_t> last_wire_;
};

TEST(EventNetwork, WireBytesAccountingAndBandwidthDelay) {
  // 3 nodes, 100-double payloads compressed to 50 bytes on the wire, a
  // 1-second propagation and 50 bytes/s of bandwidth: every real-link
  // delivery lands at 1 + 50/50 = 2 simulated seconds, and the byte
  // counters cover real links only (self-delivery is a local loopback).
  const std::size_t n = 3;
  const std::size_t dim = 100;
  const std::size_t wire = 50;
  std::vector<std::unique_ptr<WireProcess>> owned;
  std::vector<HonestProcess*> pointers;
  for (std::size_t i = 0; i < n; ++i) {
    owned.push_back(std::make_unique<WireProcess>(i, dim, wire));
    pointers.push_back(owned.back().get());
  }
  NoAdversary adversary;
  ConstantDelayModel delay(1.0);
  EventNetworkConfig config;
  config.quorum = n;
  config.timeout = -1.0;
  config.delay = &delay;
  config.bandwidth = 50.0;
  EventNetwork net(pointers, adversary, config);
  net.run(2);

  EXPECT_DOUBLE_EQ(net.round_end_times()[0], 2.0);
  EXPECT_DOUBLE_EQ(net.round_end_times()[1], 4.0);
  const NetworkStats& stats = net.stats();
  const std::size_t real_links = 2 * n * (n - 1);  // 2 rounds, no self
  EXPECT_EQ(stats.messages_delivered, 2 * n * n);  // inboxes include self
  EXPECT_EQ(stats.bytes_sent, real_links * wire);
  EXPECT_EQ(stats.bytes_delivered, real_links * wire);
  EXPECT_EQ(stats.bytes_dense_delivered,
            real_links * dim * sizeof(double));
  // The inbox messages carry their sender's declared wire size.
  for (const std::size_t delivered_wire : owned[0]->last_wire()) {
    EXPECT_EQ(delivered_wire, wire);
  }
}

TEST(EventNetwork, QuorumAdvanceLeavesStragglersLate) {
  // Heterogeneous constant delays per link are not expressible with the
  // stock models, so drive quorum behaviour with a uniform distribution:
  // with quorum n - 2, each node advances at its (n-2)-th arrival and the
  // two slowest messages of some round will typically land late.
  const std::size_t n = 6;
  Fleet fleet(n);
  NoAdversary adversary;
  UniformDelayModel delay(0.5, 10.0);
  EventNetworkConfig config;
  config.quorum = n - 2;
  config.timeout = -1.0;
  config.delay = &delay;
  config.seed = 42;
  EventNetwork net(fleet.pointers, adversary, config);
  net.run(5);
  const auto& stats = net.stats();
  EXPECT_EQ(stats.rounds, 5u);
  EXPECT_GT(stats.messages_late, 0u);
  // Every message is accounted exactly once — delivered, late, dropped or
  // delayed — except last-round stragglers still in flight when the run
  // stops (at most the 2 beyond-quorum messages per receiver).
  const std::size_t accounted = stats.messages_delivered +
                                stats.messages_late +
                                stats.messages_dropped +
                                stats.messages_delayed;
  EXPECT_LE(accounted, 5 * n * n);
  EXPECT_GE(accounted, 5 * n * n - 2 * n);
  // Inboxes never resolve below the quorum (no timeouts configured).
  for (const auto& proc : fleet.owned) {
    for (const auto& [round, inbox] : proc->inboxes()) {
      (void)round;
      EXPECT_GE(inbox.size(), n - 2);
    }
  }
  EXPECT_EQ(stats.timeouts_fired, 0u);
}

TEST(EventNetwork, DropAndTimeoutAccounting) {
  const std::size_t n = 5;
  Fleet fleet(n);
  NoAdversary adversary;
  EventNetworkConfig config;
  config.quorum = n;           // unreachable under loss
  config.timeout = 3.0;        // partial synchrony opens the round
  config.drop_probability = 0.4;
  config.seed = 9;
  EventNetwork net(fleet.pointers, adversary, config);
  net.run(6);
  const auto& stats = net.stats();
  EXPECT_EQ(stats.rounds, 6u);
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_GT(stats.timeouts_fired, 0u);
  EXPECT_EQ(stats.messages_delivered + stats.messages_late +
                stats.messages_dropped + stats.messages_delayed,
            6 * n * n);
  // Timeout pacing: each round takes exactly Delta (drops force it).
  ASSERT_GE(net.round_end_times().size(), 1u);
  EXPECT_GT(net.now(), 0.0);
}

TEST(EventNetwork, QueueDryForcesStalledRoundsOpen) {
  const std::size_t n = 3;
  Fleet fleet(n);
  NoAdversary adversary;
  EventNetworkConfig config;
  config.quorum = n;
  config.timeout = -1.0;       // no timeout at all
  config.drop_probability = 0.9;
  config.seed = 4;
  EventNetwork net(fleet.pointers, adversary, config);
  net.run(3);  // must terminate even though quorum is hopeless
  EXPECT_EQ(net.stats().rounds, 3u);
  EXPECT_GT(net.stats().timeouts_fired, 0u);
}

TEST(EventNetwork, ByzantineStatsMatchSyncSemantics) {
  // One Byzantine node omitting towards camp 2 (SplitWorld): the event
  // engine must count omissions/deliveries exactly like the sync engine.
  Fleet fleet(4);
  auto pointers = fleet.pointers;
  pointers.push_back(nullptr);
  pointers.push_back(nullptr);
  SplitWorldAdversary adversary({0, 1}, {2, 3}, {4}, {5});
  EventNetworkConfig config;
  EventNetwork net(pointers, adversary, config);
  net.run_round();
  // Each Byzantine supporter delivers to its 2-camp + omits the other 2.
  EXPECT_EQ(net.stats().messages_omitted, 4u);
  EXPECT_EQ(net.stats().messages_delivered, 4u * 4u + 4u);
}

/// Fault-free adversary that requests a huge targeted delay on every link.
class SlowEverythingAdversary final : public Adversary {
 public:
  bool is_byzantine(std::size_t) const override { return false; }
  std::optional<Vector> byzantine_value(
      std::size_t, std::size_t,
      const std::vector<std::optional<Vector>>&) override {
    return std::nullopt;
  }
  double scheduling_delay(std::size_t, std::size_t, std::size_t) override {
    return 1e9;
  }
};

TEST(EventNetwork, AdversarialSchedulingDelayIsClampedToBound) {
  const std::size_t n = 3;
  Fleet fleet(n);
  SlowEverythingAdversary adversary;
  EventNetworkConfig config;
  config.quorum = n;
  config.timeout = -1.0;
  config.adversary_delay_bound = 2.0;  // partial-synchrony bound
  EventNetwork net(fleet.pointers, adversary, config);
  net.run(2);
  // Every non-self link pays exactly the clamped bound; rounds complete at
  // 2 and 4, never at the adversary's requested 1e9.
  ASSERT_EQ(net.round_end_times().size(), 2u);
  EXPECT_DOUBLE_EQ(net.round_end_times()[0], 2.0);
  EXPECT_DOUBLE_EQ(net.round_end_times()[1], 4.0);
}

// --- sharded-core determinism ----------------------------------------------

/// One full adversarial async run captured for bitwise comparison.
struct RunCapture {
  std::vector<RecordedInboxes> inboxes;
  NetworkStats stats;
  std::vector<double> ends;
};

/// A messy configuration on purpose: bursty per-sender MMPP state (the one
/// stateful delay model), loss, partial-synchrony timeouts, a Byzantine
/// broadcaster, and a quorum that lets fast nodes run ahead of slow ones.
RunCapture run_sharded(ThreadPool* pool, const char* family) {
  const std::size_t n = 6;
  Fleet fleet(n);
  auto pointers = fleet.pointers;
  pointers.push_back(nullptr);  // id 6 is Byzantine
  FixedVectorAdversary adversary({6}, {42.0});
  NetConfig net = NetConfig::parse(std::string("async:delay=") + family +
                                   ",mean=2,mean2=20,p01=0.2,p10=0.4");
  net.seed = 31;
  auto delay = make_delay_model(net, n + 1);
  EventNetworkConfig config;
  config.quorum = n;  // n of n+1: one message may lag behind each advance
  config.timeout = 15.0;
  config.drop_probability = 0.05;
  config.seed = 31;
  config.delay = delay.get();
  config.pool = pool;
  EventNetwork engine(pointers, adversary, config);
  engine.run(5);
  RunCapture out;
  for (auto& proc : fleet.owned) out.inboxes.push_back(proc->inboxes());
  out.stats = engine.stats();
  out.ends = engine.round_end_times();
  return out;
}

void expect_bitwise_equal(const RunCapture& a, const RunCapture& b) {
  ASSERT_EQ(a.ends.size(), b.ends.size());
  for (std::size_t r = 0; r < a.ends.size(); ++r) {
    EXPECT_EQ(a.ends[r], b.ends[r]);  // exact, not approximate
  }
  ASSERT_EQ(a.inboxes.size(), b.inboxes.size());
  for (std::size_t i = 0; i < a.inboxes.size(); ++i) {
    ASSERT_EQ(a.inboxes[i].size(), b.inboxes[i].size());
    for (const auto& [round, inbox] : a.inboxes[i]) {
      const auto& other = b.inboxes[i].at(round);
      ASSERT_EQ(inbox.size(), other.size());
      for (std::size_t k = 0; k < inbox.size(); ++k) {
        EXPECT_EQ(inbox[k].sender, other[k].sender);
        EXPECT_EQ(inbox[k].payload, other[k].payload);
      }
    }
  }
  EXPECT_EQ(a.stats.messages_delivered, b.stats.messages_delivered);
  EXPECT_EQ(a.stats.messages_dropped, b.stats.messages_dropped);
  EXPECT_EQ(a.stats.messages_late, b.stats.messages_late);
  EXPECT_EQ(a.stats.messages_delayed, b.stats.messages_delayed);
  EXPECT_EQ(a.stats.messages_omitted, b.stats.messages_omitted);
  EXPECT_EQ(a.stats.timeouts_fired, b.stats.timeouts_fired);
  EXPECT_EQ(a.stats.bytes_sent, b.stats.bytes_sent);
  EXPECT_EQ(a.stats.bytes_delivered, b.stats.bytes_delivered);
}

TEST(EventNetwork, ShardedDrainIsBitwiseIdenticalAcrossJobCounts) {
  // The conservative safe-window rule promises serial == parallel exactly,
  // not approximately: the same run on 1, 2 and 4 workers must produce
  // identical inboxes, statistics and round end times, for a stateless and
  // for the stateful (MMPP) delay family.
  for (const char* family : {"exp", "mmpp"}) {
    const RunCapture serial = run_sharded(nullptr, family);
    ThreadPool two(2);
    ThreadPool four(4);
    const RunCapture jobs2 = run_sharded(&two, family);
    const RunCapture jobs4 = run_sharded(&four, family);
    expect_bitwise_equal(serial, jobs2);
    expect_bitwise_equal(serial, jobs4);
  }
}

TEST(EventNetwork, ArenaPayloadsSurviveRushingAdversaryAndRunAhead) {
  // The rushing adversary fixes its round value only after the last honest
  // node enters the round, and with quorum below n fast nodes run ahead
  // into later rounds while old-round messages are still in flight.  The
  // round book (and the arena behind every PayloadView) must stay alive
  // until the last honest node seals the round: every delivered Byzantine
  // payload must read back the fixed value exactly, never recycled bytes.
  const std::size_t n = 5;
  Fleet fleet(n);
  auto pointers = fleet.pointers;
  pointers.push_back(nullptr);
  FixedVectorAdversary adversary({5}, {42.0, -7.5});
  ExponentialDelayModel delay(3.0);
  EventNetworkConfig config;
  config.quorum = n;  // of n+1 senders: advance one message early
  config.timeout = -1.0;
  config.seed = 77;
  config.delay = &delay;
  EventNetwork engine(pointers, adversary, config);
  engine.run(6);
  const Vector fixed{42.0, -7.5};
  std::size_t byzantine_seen = 0;
  for (const auto& proc : fleet.owned) {
    for (const auto& [round, inbox] : proc->inboxes()) {
      (void)round;
      for (const auto& msg : inbox) {
        if (msg.sender != 5) continue;
        ++byzantine_seen;
        EXPECT_EQ(msg.payload, fixed);
      }
    }
  }
  EXPECT_GT(byzantine_seen, 0u);
  // Run-ahead actually happened (otherwise this test shrinks to the
  // synchronous case and proves nothing about book lifetime).
  EXPECT_GT(engine.stats().messages_late, 0u);
}

// --- agreement equivalence -------------------------------------------------

AgreementResult run_agreement_with_net(const std::string& net,
                                       std::uint64_t seed) {
  const std::size_t n = 7;
  const std::size_t t = 2;
  VectorList inputs;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
  }
  SignFlipAdversary adversary({5, 6}, 1.0);
  AgreementConfig config;
  config.n = n;
  config.t = t;
  config.round_function = make_round_function("BOX-GEOM");
  config.net = NetConfig::parse(net);
  config.net.seed = seed;
  return run_fixed_rounds_agreement(inputs, adversary, 5, config);
}

TEST(Equivalence, AgreementZeroDelayAsyncMatchesSyncBitwise) {
  const AgreementResult sync = run_agreement_with_net("sync", 17);
  const AgreementResult async_zero =
      run_agreement_with_net("async:delay=zero", 17);
  ASSERT_EQ(sync.outputs.size(), async_zero.outputs.size());
  for (std::size_t i = 0; i < sync.outputs.size(); ++i) {
    EXPECT_EQ(sync.outputs[i], async_zero.outputs[i]);  // bitwise
  }
  EXPECT_EQ(sync.trace.honest_diameter, async_zero.trace.honest_diameter);
  EXPECT_EQ(sync.network.messages_delivered,
            async_zero.network.messages_delivered);
  EXPECT_DOUBLE_EQ(async_zero.simulated_seconds, 0.0);
}

TEST(Equivalence, AsyncDelaysChangeTimingButReportLatency) {
  const AgreementResult async_exp =
      run_agreement_with_net("async:delay=exp,mean=5", 17);
  EXPECT_GT(async_exp.simulated_seconds, 0.0);
  ASSERT_EQ(async_exp.trace.round_latency.size(), 5u);
  double total = 0.0;
  for (double latency : async_exp.trace.round_latency) {
    EXPECT_GE(latency, 0.0);
    total += latency;
  }
  EXPECT_NEAR(total, async_exp.simulated_seconds, 1e-12);
}

// --- learning equivalence --------------------------------------------------

TrainingResult run_training_with_net(const std::string& net) {
  ml::SyntheticSpec spec = ml::SyntheticSpec::mnist_like(5);
  spec.height = spec.width = 6;
  spec.train_per_class = 12;
  spec.test_per_class = 4;
  const ml::TrainTestSplit data = ml::make_synthetic_dataset(spec);
  TrainingConfig config;
  config.num_clients = 7;
  config.num_byzantine = 1;
  config.rounds = 4;
  config.batch_size = 8;
  config.rule = make_rule("BOX-GEOM");
  config.attack = make_attack("sign-flip");
  config.seed = 23;
  config.net = NetConfig::parse(net);
  config.net.seed = 23;
  const std::size_t dim = data.train.feature_dim();
  ModelFactory factory = [dim] { return ml::make_mlp(dim, 6, 4, 10); };
  DecentralizedTrainer trainer(config, factory, &data.train, &data.test);
  return trainer.run();
}

TEST(Equivalence, DecentralizedTrainingZeroDelayAsyncMatchesSyncBitwise) {
  const TrainingResult sync = run_training_with_net("sync");
  const TrainingResult async_zero = run_training_with_net("async:delay=zero");
  ASSERT_EQ(sync.history.size(), async_zero.history.size());
  for (std::size_t r = 0; r < sync.history.size(); ++r) {
    EXPECT_EQ(sync.history[r].accuracy, async_zero.history[r].accuracy);
    EXPECT_EQ(sync.history[r].mean_honest_loss,
              async_zero.history[r].mean_honest_loss);
    EXPECT_EQ(sync.history[r].disagreement,
              async_zero.history[r].disagreement);
    EXPECT_EQ(sync.history[r].gradient_diameter,
              async_zero.history[r].gradient_diameter);
    EXPECT_EQ(async_zero.history[r].sim_seconds, 0.0);
  }
  EXPECT_EQ(sync.final_accuracy, async_zero.final_accuracy);
}

TEST(Equivalence, DecentralizedAsyncReportsSimulatedTime) {
  const TrainingResult async_exp =
      run_training_with_net("async:delay=exp,mean=2");
  for (const auto& metrics : async_exp.history) {
    EXPECT_GT(metrics.sim_seconds, 0.0);
  }
}

}  // namespace
}  // namespace bcl
