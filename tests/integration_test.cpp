// End-to-end integration tests: full collaborative-learning runs at reduced
// scale reproducing the qualitative shapes of the paper's evaluation
// (Section 5), plus cross-module interactions that unit tests cannot see.

#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/registry.hpp"
#include "attacks/attack.hpp"
#include "attacks/registry.hpp"
#include "learning/centralized.hpp"
#include "learning/decentralized.hpp"
#include "ml/architectures.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

struct Scenario {
  ml::TrainTestSplit data;
  ModelFactory factory;
};

Scenario make_scenario(std::uint64_t seed) {
  ml::SyntheticSpec spec = ml::SyntheticSpec::mnist_small(seed);
  spec.height = 10;
  spec.width = 10;
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  Scenario s{ml::make_synthetic_dataset(spec), nullptr};
  const std::size_t dim = s.data.train.feature_dim();
  s.factory = [dim] { return ml::make_mlp(dim, 16, 8, 10); };
  return s;
}

TrainingConfig config_for(const std::string& rule, const std::string& attack,
                          std::size_t f, ml::Heterogeneity heterogeneity,
                          std::size_t rounds) {
  TrainingConfig cfg;
  cfg.num_clients = 10;
  cfg.num_byzantine = f;
  cfg.rounds = rounds;
  cfg.batch_size = 16;
  cfg.rule = make_rule(rule);
  cfg.attack = make_attack(attack);
  cfg.schedule = ml::LearningRateSchedule(0.25, 0.25 / 50.0);
  cfg.heterogeneity = heterogeneity;
  cfg.seed = 11;
  return cfg;
}

double centralized_accuracy(const Scenario& s, const std::string& rule,
                            const std::string& attack, std::size_t f,
                            ml::Heterogeneity h, std::size_t rounds = 50) {
  CentralizedTrainer trainer(config_for(rule, attack, f, h, rounds),
                             s.factory, &s.data.train, &s.data.test);
  return trainer.run().best_accuracy();
}

// Figure 1 shape: with f = 1 sign flip and mild heterogeneity, all four
// agreement-based rules reach useful accuracy.
TEST(FigureShapes, Fig1MildHeterogeneityAllRobustRulesLearn) {
  const Scenario s = make_scenario(100);
  for (const char* rule : {"MD-MEAN", "MD-GEOM", "BOX-MEAN", "BOX-GEOM"}) {
    const double acc = centralized_accuracy(s, rule, "sign-flip", 1,
                                            ml::Heterogeneity::Mild);
    EXPECT_GT(acc, 0.5) << rule;
  }
}

// Figure 1 shape: Krum relies on single-point selection and degrades under
// extreme heterogeneity relative to the box rules.
TEST(FigureShapes, Fig1ExtremeHeterogeneityHurtsKrum) {
  const Scenario s = make_scenario(101);
  const double krum = centralized_accuracy(s, "KRUM", "sign-flip", 1,
                                           ml::Heterogeneity::Extreme, 50);
  const double box_geom = centralized_accuracy(
      s, "BOX-GEOM", "sign-flip", 1, ml::Heterogeneity::Extreme, 50);
  // Krum picks a single client's gradient; with <= 2 classes per client it
  // cannot represent the joint distribution.
  EXPECT_GT(box_geom, krum - 0.05);
  EXPECT_LT(krum, 0.75);
}

// Figure 2a shape: f = 2 sign flips on extreme heterogeneity — the plain
// mean collapses while BOX-GEOM stays useful.
TEST(FigureShapes, Fig2aTwoByzantineExtreme) {
  // This is the hardest paper setting (the paper itself reports unstable
  // curves and ~57% after many rounds); the shape to check is that the
  // box rule reaches useful accuracy at some point while the plain mean
  // never leaves chance level.
  const Scenario s = make_scenario(102);
  const double mean_acc = centralized_accuracy(
      s, "MEAN", "sign-flip", 2, ml::Heterogeneity::Extreme, 60);
  const double box_geom = centralized_accuracy(
      s, "BOX-GEOM", "sign-flip", 2, ml::Heterogeneity::Extreme, 150);
  EXPECT_GT(box_geom, 0.3);
  EXPECT_LT(mean_acc, 0.3);
  EXPECT_GT(box_geom, mean_acc);
}

// Figure 3 shape: decentralized, mean-based aggregation under sign flip
// fails while geometric-median-based BOX-GEOM converges (the paper's
// headline empirical claim).
TEST(FigureShapes, Fig3DecentralizedGeoBeatsMeanUnderSignFlip) {
  const Scenario s = make_scenario(103);
  auto decentralized_accuracy = [&](const std::string& rule) {
    TrainingConfig cfg = config_for(rule, "sign-flip", 1,
                                    ml::Heterogeneity::Mild, 30);
    DecentralizedTrainer trainer(cfg, s.factory, &s.data.train,
                                 &s.data.test);
    return trainer.run().best_accuracy();
  };
  const double geo = decentralized_accuracy("BOX-GEOM");
  const double simple_mean = decentralized_accuracy("MEAN");
  EXPECT_GT(geo, 0.45);
  // The unfiltered mean absorbs the flipped gradient every round.
  EXPECT_GT(geo, simple_mean);
}

// Crash failures: every robust rule tolerates a crashed client.
TEST(Integration, CrashToleranceAcrossRules) {
  const Scenario s = make_scenario(104);
  for (const char* rule : {"MD-GEOM", "BOX-GEOM"}) {
    const double acc = centralized_accuracy(s, rule, "crash", 1,
                                            ml::Heterogeneity::Mild, 40);
    EXPECT_GT(acc, 0.45) << rule;
  }
}

// The no-attack control: robust rules pay only a small robustness tax
// relative to the mean without faults.
TEST(Integration, NoAttackControlArm) {
  const Scenario s = make_scenario(105);
  const double mean_acc = centralized_accuracy(s, "MEAN", "none", 0,
                                               ml::Heterogeneity::Uniform, 50);
  const double box_acc = centralized_accuracy(s, "BOX-GEOM", "none", 0,
                                              ml::Heterogeneity::Uniform, 50);
  EXPECT_GT(mean_acc, 0.6);
  EXPECT_GT(box_acc, mean_acc - 0.25);
}

// Thread-pool parallelism changes nothing about the learned trajectory.
TEST(Integration, EndToEndParallelDeterminism) {
  const Scenario s = make_scenario(106);
  ThreadPool pool(4);
  auto run = [&](ThreadPool* p) {
    TrainingConfig cfg = config_for("BOX-GEOM", "sign-flip", 1,
                                    ml::Heterogeneity::Mild, 4);
    cfg.pool = p;
    DecentralizedTrainer trainer(cfg, s.factory, &s.data.train,
                                 &s.data.test);
    return trainer.run();
  };
  const auto serial = run(nullptr);
  const auto parallel = run(&pool);
  ASSERT_EQ(serial.history.size(), parallel.history.size());
  for (std::size_t r = 0; r < serial.history.size(); ++r) {
    EXPECT_DOUBLE_EQ(serial.history[r].accuracy,
                     parallel.history[r].accuracy);
    EXPECT_DOUBLE_EQ(serial.history[r].disagreement,
                     parallel.history[r].disagreement);
  }
}

// A small CifarNet end-to-end smoke run (the Figure 2b pipeline).
TEST(Integration, CifarNetPipelineRuns) {
  ml::SyntheticSpec spec = ml::SyntheticSpec::cifar_small(107);
  spec.height = 8;
  spec.width = 8;
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  const auto data = ml::make_synthetic_dataset(spec);
  const std::size_t c = spec.channels;
  const std::size_t hw = spec.height;
  ModelFactory factory = [c, hw] {
    return ml::make_cifarnet(c, hw, hw, 10, 3, 6, 16);
  };
  TrainingConfig cfg = config_for("BOX-GEOM", "sign-flip", 1,
                                  ml::Heterogeneity::Mild, 4);
  cfg.batch_size = 8;
  CentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
  const auto result = trainer.run();
  EXPECT_EQ(result.history.size(), 4u);
  for (const auto& metrics : result.history) {
    EXPECT_TRUE(std::isfinite(metrics.mean_honest_loss));
    EXPECT_GE(metrics.accuracy, 0.0);
  }
}

// Label-flip data poisoning flows through the dataset path.
TEST(Integration, LabelFlipPoisoningStillLearnsWithRobustRule) {
  Scenario s = make_scenario(108);
  // Poison 10% of the training data (the first client's worth).
  std::vector<std::size_t> poisoned;
  for (std::size_t i = 0; i < s.data.train.size() / 10; ++i) {
    poisoned.push_back(i);
  }
  flip_labels_in_place(s.data.train, poisoned);
  const double acc = centralized_accuracy(s, "BOX-GEOM", "none", 1,
                                          ml::Heterogeneity::Mild, 60);
  EXPECT_GT(acc, 0.4);
}

}  // namespace
}  // namespace bcl
