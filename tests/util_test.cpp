// Tests for src/util: RNG determinism and distributions, thread pool
// correctness, table/CSV output, CLI parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

// --- Rng ---

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformU64RejectsZero) {
  Rng rng(12);
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(14);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaleShift) {
  Rng rng(16);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Rng, SplitStreamsIndependentOfParentDraws) {
  Rng parent(99);
  Rng child_before = parent.split(3);
  parent.next_u64();
  parent.next_u64();
  Rng child_after = parent.split(3);
  // Splitting depends only on parent state at split time; the parent state
  // changed, so the children differ -- but two splits with the same index
  // from the same state agree.
  Rng parent2(99);
  Rng child2 = parent2.split(3);
  EXPECT_EQ(child_before.next_u64(), child2.next_u64());
  (void)child_after;
}

TEST(Rng, SplitDifferentIndicesDiffer) {
  Rng parent(99);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(17);
  const auto p = rng.permutation(20);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(18);
  std::vector<int> v{1, 2, 2, 3, 3, 3};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// --- ThreadPool ---

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, WaitIdleRethrowsSubmitError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // Error is cleared after rethrow.
  pool.submit([] {});
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::global().parallel_for(0, 10,
                                    [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

// --- Table ---

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, BuildsRowsAndCounts) {
  Table t({"a", "b"});
  t.new_row().add("x").add_num(1.5, 2);
  t.new_row().add_int(42).add("y");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][1], "1.50");
  EXPECT_EQ(t.rows()[1][0], "42");
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.new_row().add("1");
  EXPECT_THROW(t.add("2"), std::logic_error);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.new_row().add("long-name").add("1");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(Table, CsvRoundTripsSpecialChars) {
  Table t({"a"});
  t.new_row().add("with,comma\"quote");
  const std::string path = "/tmp/bcl_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string header;
  std::string line;
  std::getline(f, header);
  std::getline(f, line);
  EXPECT_EQ(header, "a");
  EXPECT_EQ(line, "\"with,comma\"\"quote\"");
  std::remove(path.c_str());
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

// --- CliArgs ---

TEST(CliArgs, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "hello"};
  CliArgs args(4, argv, {"alpha", "beta"});
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_string("beta", ""), "hello");
}

TEST(CliArgs, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, argv, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(CliArgs(2, argv, {"yes"}), std::invalid_argument);
}

TEST(CliArgs, MissingFlagsFallBack) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv, {"x"});
  EXPECT_EQ(args.get_int("x", -5), -5);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(args.has("x"));
}

TEST(CliArgs, NonFlagPositionalRejected) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(CliArgs(2, argv, {}), std::invalid_argument);
}

// --- Logging / Stopwatch ---

TEST(Logging, LevelFilterRoundTrip) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_info() << "should be suppressed";
  set_log_level(old_level);
}

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace bcl
