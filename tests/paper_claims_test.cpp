// Direct empirical verification of the paper's formal claims:
//   Theorem 4.1 - safe area has unbounded geometric-median approximation
//   Lemma 4.2   - MD-GEOM agreement need not converge
//   Theorem 4.3 - Krum / Multi-Krum have unbounded approximation
//   Theorem 4.4 - BOX-GEOM converges (E_max halves) with ratio <= 2*sqrt(d)
//   Section 4.1 - one MD-GEOM step is a 2-approximation

#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/approximation.hpp"
#include "aggregation/hyperbox_rules.hpp"
#include "aggregation/krum.hpp"
#include "aggregation/minimum_diameter_rules.hpp"
#include "agreement/protocol.hpp"
#include "geometry/safe_area.hpp"
#include "linalg/hyperbox.hpp"
#include "network/adversary.hpp"
#include "util/rng.hpp"

namespace bcl {
namespace {

AggregationContext ctx_of(std::size_t n, std::size_t t) {
  AggregationContext ctx;
  ctx.n = n;
  ctx.t = t;
  return ctx;
}

// ---------------------------------------------------------------- Thm 4.1

TEST(Theorem41, SafeAreaRatioUnboundedOnCollapsedConstruction) {
  // Theorem 4.1 uses d*f + 1 correct nodes (1 at v0, d groups of f at
  // v + eps*e_j) plus f Byzantine at v0, with d > 3 so that every
  // (n-t)-subset's geometric median lands at v (majority of collinear
  // points), making r_cov -> 0 while the safe area stays ~x away from mu*.
  // We realize the eps -> 0 limit of the d = 4, f = 1 instance on a line:
  // multiset {v0 x2, v x4}, n = 6, t = 1.  Every 5-subset has >= 3 of 5
  // points at v, so S_geo = {v} exactly and r_cov = 0, yet the safe area
  // is the whole interval [v0, v]: its midpoint has infinite ratio.
  const double x = 100.0;
  const VectorList inputs{{0.0}, {0.0}, {x}, {x}, {x}, {x}};
  const std::size_t t = 1;
  const auto point = safe_area_point(inputs, t);
  ASSERT_TRUE(point.has_value());
  EXPECT_NEAR((*point)[0], x / 2.0, 1e-9);  // interval [0, x] midpoint

  const VectorList honest{{0.0}, {x}, {x}, {x}, {x}};
  const auto report = measure_geo_approximation(inputs, honest, t, *point);
  EXPECT_NEAR(report.true_aggregate[0], x, 1e-9);  // majority at v
  EXPECT_LT(report.covering_ball.radius, 1e-9);    // S_geo degenerate
  EXPECT_GT(report.distance_to_true, x / 2.0 - 1e-9);
  EXPECT_TRUE(std::isinf(report.ratio));
}

TEST(Theorem41, SafeAreaRatioUnboundedIn2D) {
  // Same collapsed construction embedded in the plane, exercising the
  // exact polygon-clipping safe area.
  const double x = 50.0;
  const VectorList inputs{{0.0, 0.0}, {0.0, 0.0}, {x, 0.0},
                          {x, 0.0},   {x, 0.0},   {x, 0.0}};
  const auto point = safe_area_point(inputs, 1);
  ASSERT_TRUE(point.has_value());
  // Safe area is the segment [v0, v]; representative = its midpoint.
  EXPECT_NEAR((*point)[0], x / 2.0, 1e-6);
  EXPECT_NEAR((*point)[1], 0.0, 1e-9);

  const VectorList honest{{0.0, 0.0}, {x, 0.0}, {x, 0.0}, {x, 0.0},
                          {x, 0.0}};
  const auto report = measure_geo_approximation(inputs, honest, 1, *point);
  EXPECT_LT(report.covering_ball.radius, 1e-9);
  EXPECT_GT(report.distance_to_true, 1.0);
  EXPECT_TRUE(std::isinf(report.ratio));
}

TEST(Theorem41, BoxGeomBoundedOnTheSameConstruction) {
  // Contrast with Algorithm 2: on the identical instance BOX-GEOM outputs
  // a vector with distance O(r_cov) from mu* (here exactly mu*, since
  // S_geo is a single point inside the trusted hyperbox).
  const double x = 100.0;
  const VectorList inputs{{0.0}, {0.0}, {x}, {x}, {x}, {x}};
  BoxGeoMedianRule rule;
  const Vector out = rule.aggregate(inputs, ctx_of(6, 1));
  EXPECT_NEAR(out[0], x, 1e-6);
}

// ---------------------------------------------------------------- Thm 4.3

TEST(Theorem43, KrumRatioUnboundedWhenMedoidDiffersFromMedian) {
  // Byzantine nodes stay silent: exactly n - t honest vectors arrive, so
  // S_geo is a single point (r_cov = 0) but Krum returns a medoid, which in
  // general differs from the geometric median -> infinite ratio.
  const VectorList honest{{0.0, 0.0}, {4.0, 0.0}, {2.0, 3.0}};
  KrumRule krum;
  const std::size_t n = 4;
  const std::size_t t = 1;
  const Vector out = krum.aggregate(honest, ctx_of(n, t));
  // m = n - t vectors received, so the candidate subsets of size n - t are
  // the whole received set: zero excess values to drop in the measurement.
  const auto report = measure_geo_approximation(honest, honest, 0, out);
  EXPECT_LT(report.covering_ball.radius, 1e-9);
  EXPECT_GT(report.distance_to_true, 0.1);
  EXPECT_TRUE(std::isinf(report.ratio));
}

TEST(Theorem43, MultiKrumEqualsKrumOnExactlyNMinusTVectors) {
  // With exactly n - t received vectors every medoid choice averages over
  // the same set, so Multi-Krum_q collapses... to the mean of the q best,
  // and for q = 1 exactly to Krum; the unbounded-ratio argument carries
  // over because the output is data-independent of the (empty) ball.
  const VectorList honest{{0.0, 0.0}, {4.0, 0.0}, {2.0, 3.0}};
  MultiKrumRule multikrum(3);
  const Vector out = multikrum.aggregate(honest, ctx_of(4, 1));
  const auto report = measure_geo_approximation(honest, honest, 0, out);
  EXPECT_LT(report.covering_ball.radius, 1e-9);
  EXPECT_TRUE(std::isinf(report.ratio) || report.distance_to_true > 0.0);
}

TEST(Theorem43, BoxGeomStaysFiniteOnTheSameInstance) {
  // Contrast: on the Krum counterexample instance BOX-GEOM's output is the
  // geometric median itself (singleton S_geo), ratio 0.
  const VectorList honest{{0.0, 0.0}, {4.0, 0.0}, {2.0, 3.0}};
  BoxGeoMedianRule rule;
  const Vector out = rule.aggregate(honest, ctx_of(4, 1));
  const auto report = measure_geo_approximation(honest, honest, 1, out);
  EXPECT_NEAR(report.distance_to_true, 0.0, 1e-6);
}

// ---------------------------------------------------------------- Lem 4.2

TEST(Lemma42, MdGeomSplitWorldNeverConverges) {
  // n = 10, t = 2: camps U1 = {0..3} at v1, U2 = {4..7} at v2; Byzantine
  // ids 8 (supports camp 1) and 9 (supports camp 2), each delivering only
  // to its camp.  With sticky tie-breaking every node keeps its camp's
  // vector forever: the honest diameter never decreases.
  const std::size_t n = 10;
  const Vector v1{0.0, 0.0};
  const Vector v2{1.0, 1.0};
  VectorList inputs(n, v1);
  for (std::size_t i = 4; i < 8; ++i) inputs[i] = v2;

  SplitWorldAdversary adversary({0, 1, 2, 3}, {4, 5, 6, 7}, {8}, {9});
  AgreementConfig cfg;
  cfg.n = n;
  cfg.t = 2;
  cfg.round_function = make_round_function("MD-GEOM-STICKY");
  cfg.epsilon = 1e-6;
  const auto result = run_fixed_rounds_agreement(inputs, adversary, 12, cfg);

  const double d0 = result.trace.honest_diameter.front();
  EXPECT_GT(d0, 1.0);
  for (double diam : result.trace.honest_diameter) {
    EXPECT_NEAR(diam, d0, 1e-9);  // exactly the initial configuration
  }
  // Camp membership preserved: U1 still at v1, U2 still at v2.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(approx_equal(result.outputs[i], v1, 1e-9));
  }
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_TRUE(approx_equal(result.outputs[i], v2, 1e-9));
  }
}

TEST(Lemma42, BoxGeomConvergesOnTheSameAdversary) {
  // The hyperbox algorithm halves E_max even against the split-world
  // adversary — the contrast the paper draws in Section 4.2.
  const std::size_t n = 10;
  VectorList inputs(n, Vector{0.0, 0.0});
  for (std::size_t i = 4; i < 8; ++i) inputs[i] = {1.0, 1.0};
  SplitWorldAdversary adversary({0, 1, 2, 3}, {4, 5, 6, 7}, {8}, {9});
  AgreementConfig cfg;
  cfg.n = n;
  cfg.t = 2;
  cfg.round_function = make_round_function("BOX-GEOM");
  cfg.epsilon = 1e-4;
  cfg.max_rounds = 40;
  const auto result = run_approximate_agreement(inputs, adversary, cfg);
  EXPECT_TRUE(result.converged);
}

// -------------------------------------------------- Sec 4.1 (MD-GEOM step)

TEST(Section41, SingleMdGeomStepIsTwoApproximation) {
  // "The vector chosen at the end of the first round of Algorithm 1 is a
  // 2-approximation of the geometric median of the non-faulty nodes."
  Rng rng(1);
  MinimumDiameterGeoMedianRule rule;
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 8;
    const std::size_t t = 2;
    VectorList honest;
    for (std::size_t i = 0; i < n - t; ++i) {
      honest.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
    }
    VectorList all = honest;
    // Byzantine vectors anywhere (including far away).
    all.push_back({rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)});
    all.push_back({rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)});
    const Vector out = rule.aggregate(all, ctx_of(n, t));
    const auto report = measure_geo_approximation(all, honest, t, out);
    if (report.covering_ball.radius > 1e-9) {
      // Small numerical slack on top of the theoretical factor 2.
      EXPECT_LE(report.ratio, 2.0 + 0.1) << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------- Thm 4.4

TEST(Theorem44, BoxGeomSingleStepRatioWithinTwoSqrtD) {
  Rng rng(2);
  BoxGeoMedianRule rule;
  for (const std::size_t d : {1u, 2u, 3u, 5u}) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t n = 7;
      const std::size_t t = 2;
      VectorList honest;
      for (std::size_t i = 0; i < n - t; ++i) {
        Vector p(d);
        for (auto& x : p) x = rng.uniform(-1.0, 1.0);
        honest.push_back(p);
      }
      VectorList all = honest;
      for (std::size_t b = 0; b < t; ++b) {
        Vector p(d);
        for (auto& x : p) x = rng.uniform(-20.0, 20.0);
        all.push_back(p);
      }
      const Vector out = rule.aggregate(all, ctx_of(n, t));
      const auto report = measure_geo_approximation(all, honest, t, out);
      if (report.covering_ball.radius > 1e-6) {
        EXPECT_LE(report.ratio,
                  2.0 * std::sqrt(static_cast<double>(d)) + 0.2)
            << "d=" << d << " trial=" << trial;
      }
    }
  }
}

TEST(Theorem44, EmaxHalvingHoldsUnderSplitWorldAndSignFlip) {
  Rng rng(3);
  for (int scenario = 0; scenario < 2; ++scenario) {
    const std::size_t n = 10;
    const std::size_t t = 2;
    VectorList inputs;
    for (std::size_t i = 0; i < n; ++i) {
      inputs.push_back({rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0),
                        rng.uniform(-4.0, 4.0)});
    }
    std::unique_ptr<Adversary> adversary;
    if (scenario == 0) {
      adversary = std::make_unique<SignFlipAdversary>(
          std::vector<std::size_t>{8, 9});
    } else {
      adversary = std::make_unique<SplitWorldAdversary>(
          std::vector<std::size_t>{0, 1, 2, 3},
          std::vector<std::size_t>{4, 5, 6, 7}, std::vector<std::size_t>{8},
          std::vector<std::size_t>{9});
    }
    AgreementConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.round_function = make_round_function("BOX-GEOM");
    cfg.epsilon = 0.0;
    const auto result =
        run_fixed_rounds_agreement(inputs, *adversary, 6, cfg);
    const auto& edges = result.trace.honest_max_edge;
    for (std::size_t r = 0; r + 1 < edges.size(); ++r) {
      EXPECT_LE(edges[r + 1], 0.5 * edges[r] + 1e-9);
    }
  }
}

TEST(Theorem44, ConvergedOutputsRemainValidApproximations) {
  // After convergence all outputs are within 2*sqrt(d)*r_cov of mu*
  // (since every round preserves validity and the box only shrinks).
  Rng rng(4);
  const std::size_t n = 8;
  const std::size_t t = 2;
  const std::size_t d = 3;
  VectorList inputs;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-2.0, 2.0);
    inputs.push_back(p);
  }
  std::vector<std::size_t> byz{6, 7};
  SignFlipAdversary adversary(byz);
  AgreementConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.round_function = make_round_function("BOX-GEOM");
  cfg.epsilon = 1e-5;
  cfg.max_rounds = 60;
  const auto result = run_approximate_agreement(inputs, adversary, cfg);
  ASSERT_TRUE(result.converged);

  VectorList honest_inputs(inputs.begin(), inputs.begin() + (n - t));
  const Vector mu_star = geometric_median_point(honest_inputs);
  // All outputs agree (epsilon) and are inside the honest bounding box;
  // the distance to mu* is bounded by the box diagonal.
  const Hyperbox box = Hyperbox::bounding(honest_inputs);
  for (const auto& out : result.outputs) {
    EXPECT_TRUE(box.contains(out, 1e-6));
    EXPECT_LE(distance(out, mu_star), box.diagonal() + 1e-6);
  }
}

}  // namespace
}  // namespace bcl
